//! §5.3 micro-benchmarks: simulation rate with and without dependency
//! tracking, cache lookup latency, predictor update cost and rollout latency.

use asc_core::cache::{CacheEntry, TrajectoryCache};
use asc_core::config::AscConfig;
use asc_core::predictor_bank::PredictorBank;
use asc_tvm::delta::SparseBytes;
use asc_tvm::deps::DepVector;
use asc_tvm::exec::{transition, transition_cached, transition_with, DecodedCache, NoDeps};
use asc_tvm::machine::Machine;
use asc_workloads::registry::{build, Benchmark, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// A faithful replica of the seed's interpreter dispatch, kept here as the
/// permanent comparison anchor for the monomorphized hot path: every state
/// access branches on an `Option<&mut DepVector>` and every retired
/// instruction re-fetches and re-decodes its 8 raw bytes.
mod seed_dispatch {
    use asc_tvm::deps::DepVector;
    use asc_tvm::encode::decode;
    use asc_tvm::error::{VmError, VmResult};
    use asc_tvm::exec::StepOutcome;
    use asc_tvm::isa::{Flags, Opcode, INSTRUCTION_BYTES, SP};
    use asc_tvm::state::{StateVector, FLAGS_OFFSET, IP_OFFSET, REG_OFFSET};

    struct Ctx<'a> {
        state: &'a mut StateVector,
        deps: Option<&'a mut DepVector>,
    }

    impl Ctx<'_> {
        #[inline]
        fn note_read(&mut self, index: usize, len: usize) {
            if let Some(deps) = self.deps.as_deref_mut() {
                deps.note_read_range(index, len);
            }
        }

        #[inline]
        fn note_write(&mut self, index: usize, len: usize) {
            if let Some(deps) = self.deps.as_deref_mut() {
                deps.note_write_range(index, len);
            }
        }

        #[inline]
        fn read_word_at(&mut self, index: usize) -> u32 {
            self.note_read(index, 4);
            self.state.word(index)
        }

        #[inline]
        fn write_word_at(&mut self, index: usize, value: u32) {
            self.note_write(index, 4);
            self.state.set_word(index, value);
        }

        #[inline]
        fn read_reg(&mut self, reg: u8) -> u32 {
            self.read_word_at(REG_OFFSET + reg as usize * 4)
        }

        #[inline]
        fn write_reg(&mut self, reg: u8, value: u32) {
            self.write_word_at(REG_OFFSET + reg as usize * 4, value);
        }

        fn fetch(&mut self, addr: u32) -> VmResult<[u8; INSTRUCTION_BYTES as usize]> {
            let index = self.state.mem_index(addr, INSTRUCTION_BYTES)?;
            self.note_read(index, INSTRUCTION_BYTES as usize);
            let mut bytes = [0u8; INSTRUCTION_BYTES as usize];
            bytes
                .copy_from_slice(&self.state.as_bytes()[index..index + INSTRUCTION_BYTES as usize]);
            Ok(bytes)
        }

        fn load_word(&mut self, addr: u32) -> VmResult<u32> {
            let index = self.state.mem_index(addr, 4)?;
            Ok(self.read_word_at(index))
        }

        fn store_word(&mut self, addr: u32, value: u32) -> VmResult<()> {
            let index = self.state.mem_index(addr, 4)?;
            self.write_word_at(index, value);
            Ok(())
        }

        fn load_byte(&mut self, addr: u32) -> VmResult<u32> {
            let index = self.state.mem_index(addr, 1)?;
            self.note_read(index, 1);
            Ok(self.state.byte(index) as u32)
        }

        fn store_byte(&mut self, addr: u32, value: u8) -> VmResult<()> {
            let index = self.state.mem_index(addr, 1)?;
            self.note_write(index, 1);
            self.state.set_byte(index, value);
            Ok(())
        }
    }

    fn alu(op: Opcode, lhs: u32, rhs: u32, addr: u32) -> VmResult<u32> {
        use Opcode::*;
        Ok(match op {
            Add => lhs.wrapping_add(rhs),
            Sub => lhs.wrapping_sub(rhs),
            Mul => lhs.wrapping_mul(rhs),
            Div => {
                if rhs == 0 {
                    return Err(VmError::DivideByZero { addr });
                }
                ((lhs as i32).wrapping_div(rhs as i32)) as u32
            }
            Rem => {
                if rhs == 0 {
                    return Err(VmError::DivideByZero { addr });
                }
                ((lhs as i32).wrapping_rem(rhs as i32)) as u32
            }
            And => lhs & rhs,
            Or => lhs | rhs,
            Xor => lhs ^ rhs,
            Shl => lhs.wrapping_shl(rhs & 31),
            Shr => lhs.wrapping_shr(rhs & 31),
            Sar => ((lhs as i32).wrapping_shr(rhs & 31)) as u32,
            other => unreachable!("{other} is not an ALU opcode"),
        })
    }

    /// The seed's `transition`, byte-for-byte in structure.
    pub fn transition(
        state: &mut StateVector,
        deps: Option<&mut DepVector>,
    ) -> VmResult<StepOutcome> {
        let mut ctx = Ctx { state, deps };

        let ip = ctx.read_word_at(IP_OFFSET);
        let raw = ctx.fetch(ip)?;
        let instruction = decode(&raw, ip)?;
        let next_ip = ip.wrapping_add(INSTRUCTION_BYTES);

        use Opcode::*;
        let outcome = match instruction.opcode {
            Halt => {
                ctx.write_word_at(IP_OFFSET, ip);
                return Ok(StepOutcome::Halted);
            }
            Nop => {
                ctx.write_word_at(IP_OFFSET, next_ip);
                StepOutcome::Continue
            }
            MovI => {
                ctx.write_reg(instruction.a, instruction.imm as u32);
                ctx.write_word_at(IP_OFFSET, next_ip);
                StepOutcome::Continue
            }
            Mov => {
                let v = ctx.read_reg(instruction.b);
                ctx.write_reg(instruction.a, v);
                ctx.write_word_at(IP_OFFSET, next_ip);
                StepOutcome::Continue
            }
            Neg => {
                let v = ctx.read_reg(instruction.b);
                ctx.write_reg(instruction.a, (v as i32).wrapping_neg() as u32);
                ctx.write_word_at(IP_OFFSET, next_ip);
                StepOutcome::Continue
            }
            Not => {
                let v = ctx.read_reg(instruction.b);
                ctx.write_reg(instruction.a, !v);
                ctx.write_word_at(IP_OFFSET, next_ip);
                StepOutcome::Continue
            }
            Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | Sar => {
                let lhs = ctx.read_reg(instruction.b);
                let rhs = ctx.read_reg(instruction.c);
                let value = alu(instruction.opcode, lhs, rhs, ip)?;
                ctx.write_reg(instruction.a, value);
                ctx.write_word_at(IP_OFFSET, next_ip);
                StepOutcome::Continue
            }
            AddI | MulI | DivI | RemI | AndI | OrI | XorI | ShlI | ShrI | SarI => {
                let lhs = ctx.read_reg(instruction.b);
                let rhs = instruction.imm as u32;
                let op = match instruction.opcode {
                    AddI => Add,
                    MulI => Mul,
                    DivI => Div,
                    RemI => Rem,
                    AndI => And,
                    OrI => Or,
                    XorI => Xor,
                    ShlI => Shl,
                    ShrI => Shr,
                    SarI => Sar,
                    _ => unreachable!("immediate ALU mapping"),
                };
                let value = alu(op, lhs, rhs, ip)?;
                ctx.write_reg(instruction.a, value);
                ctx.write_word_at(IP_OFFSET, next_ip);
                StepOutcome::Continue
            }
            LdW => {
                let base = ctx.read_reg(instruction.b);
                let addr = base.wrapping_add(instruction.imm as u32);
                let value = ctx.load_word(addr)?;
                ctx.write_reg(instruction.a, value);
                ctx.write_word_at(IP_OFFSET, next_ip);
                StepOutcome::Continue
            }
            LdB => {
                let base = ctx.read_reg(instruction.b);
                let addr = base.wrapping_add(instruction.imm as u32);
                let value = ctx.load_byte(addr)?;
                ctx.write_reg(instruction.a, value);
                ctx.write_word_at(IP_OFFSET, next_ip);
                StepOutcome::Continue
            }
            StW => {
                let base = ctx.read_reg(instruction.a);
                let value = ctx.read_reg(instruction.b);
                let addr = base.wrapping_add(instruction.imm as u32);
                ctx.store_word(addr, value)?;
                ctx.write_word_at(IP_OFFSET, next_ip);
                StepOutcome::Continue
            }
            StB => {
                let base = ctx.read_reg(instruction.a);
                let value = ctx.read_reg(instruction.b);
                let addr = base.wrapping_add(instruction.imm as u32);
                ctx.store_byte(addr, value as u8)?;
                ctx.write_word_at(IP_OFFSET, next_ip);
                StepOutcome::Continue
            }
            Cmp => {
                let lhs = ctx.read_reg(instruction.a);
                let rhs = ctx.read_reg(instruction.b);
                ctx.write_word_at(FLAGS_OFFSET, Flags::compare(lhs, rhs).to_word());
                ctx.write_word_at(IP_OFFSET, next_ip);
                StepOutcome::Continue
            }
            CmpI => {
                let lhs = ctx.read_reg(instruction.a);
                ctx.write_word_at(
                    FLAGS_OFFSET,
                    Flags::compare(lhs, instruction.imm as u32).to_word(),
                );
                ctx.write_word_at(IP_OFFSET, next_ip);
                StepOutcome::Continue
            }
            Jmp => {
                ctx.write_word_at(IP_OFFSET, instruction.imm as u32);
                StepOutcome::Continue
            }
            Jeq | Jne | Jlt | Jle | Jgt | Jge | Jltu | Jgeu => {
                let flags = Flags::from_word(ctx.read_word_at(FLAGS_OFFSET));
                let taken = match instruction.opcode {
                    Jeq => flags.eq,
                    Jne => !flags.eq,
                    Jlt => flags.lt_signed,
                    Jle => flags.lt_signed || flags.eq,
                    Jgt => !flags.lt_signed && !flags.eq,
                    Jge => !flags.lt_signed,
                    Jltu => flags.lt_unsigned,
                    Jgeu => !flags.lt_unsigned,
                    _ => unreachable!("conditional jump mapping"),
                };
                ctx.write_word_at(IP_OFFSET, if taken { instruction.imm as u32 } else { next_ip });
                StepOutcome::Continue
            }
            JmpR => {
                let target = ctx.read_reg(instruction.a);
                ctx.write_word_at(IP_OFFSET, target);
                StepOutcome::Continue
            }
            Call => {
                let sp = ctx.read_reg(SP.index() as u8).wrapping_sub(4);
                ctx.store_word(sp, next_ip)?;
                ctx.write_reg(SP.index() as u8, sp);
                ctx.write_word_at(IP_OFFSET, instruction.imm as u32);
                StepOutcome::Continue
            }
            Ret => {
                let sp = ctx.read_reg(SP.index() as u8);
                let target = ctx.load_word(sp)?;
                ctx.write_reg(SP.index() as u8, sp.wrapping_add(4));
                ctx.write_word_at(IP_OFFSET, target);
                StepOutcome::Continue
            }
            Push => {
                let value = ctx.read_reg(instruction.a);
                let sp = ctx.read_reg(SP.index() as u8).wrapping_sub(4);
                ctx.store_word(sp, value)?;
                ctx.write_reg(SP.index() as u8, sp);
                ctx.write_word_at(IP_OFFSET, next_ip);
                StepOutcome::Continue
            }
            Pop => {
                let sp = ctx.read_reg(SP.index() as u8);
                let value = ctx.load_word(sp)?;
                ctx.write_reg(SP.index() as u8, sp.wrapping_add(4));
                ctx.write_reg(instruction.a, value);
                ctx.write_word_at(IP_OFFSET, next_ip);
                StepOutcome::Continue
            }
        };
        Ok(outcome)
    }
}

fn bench_transition(c: &mut Criterion) {
    let workload = build(Benchmark::Collatz, Scale::Tiny).unwrap();
    let initial = workload.program.initial_state().unwrap();

    // Sanity: the seed replica and the current interpreter retire identical
    // trajectories, so the timing comparison is apples-to-apples.
    {
        let mut a = initial.clone();
        let mut b = initial.clone();
        for _ in 0..10_000 {
            let ra = seed_dispatch::transition(&mut a, None).unwrap();
            let rb = transition(&mut b, None).unwrap();
            assert_eq!(ra, rb);
            if ra == asc_tvm::exec::StepOutcome::Halted {
                break;
            }
        }
        assert_eq!(a, b);
    }

    let mut group = c.benchmark_group("transition");
    // The seed's dispatch: an Option<&mut DepVector> branch on every state
    // access plus a fetch+decode of 8 raw bytes per retired instruction.
    group.bench_function("seed_dispatch_1k_instructions", |b| {
        b.iter(|| {
            let mut state = initial.clone();
            for _ in 0..1000 {
                if seed_dispatch::transition(black_box(&mut state), None).unwrap()
                    == asc_tvm::exec::StepOutcome::Halted
                {
                    break;
                }
            }
            state
        })
    });
    group.bench_function("baseline_1k_instructions", |b| {
        b.iter(|| {
            let mut state = initial.clone();
            for _ in 0..1000 {
                if transition(black_box(&mut state), None).unwrap()
                    == asc_tvm::exec::StepOutcome::Halted
                {
                    break;
                }
            }
            state
        })
    });
    // Monomorphized no-deps sink, still decoding every fetch.
    group.bench_function("nodeps_monomorphized_1k_instructions", |b| {
        b.iter(|| {
            let mut state = initial.clone();
            for _ in 0..1000 {
                if transition_with(black_box(&mut state), &mut NoDeps).unwrap()
                    == asc_tvm::exec::StepOutcome::Halted
                {
                    break;
                }
            }
            state
        })
    });
    // The main thread's actual hot path: no-deps sink + decoded-instruction
    // cache (must be ≥1.5× the baseline dispatch above).
    group.bench_function("nodeps_decoded_cache_1k_instructions", |b| {
        b.iter(|| {
            let mut state = initial.clone();
            let mut icache = DecodedCache::new(&state);
            for _ in 0..1000 {
                if transition_cached(black_box(&mut state), &mut NoDeps, &mut icache).unwrap()
                    == asc_tvm::exec::StepOutcome::Halted
                {
                    break;
                }
            }
            state
        })
    });
    group.bench_function("dependency_tracking_1k_instructions", |b| {
        b.iter(|| {
            let mut state = initial.clone();
            let mut deps = DepVector::new(state.len_bytes());
            for _ in 0..1000 {
                if transition(black_box(&mut state), Some(&mut deps)).unwrap()
                    == asc_tvm::exec::StepOutcome::Halted
                {
                    break;
                }
            }
            deps.touched()
        })
    });
    group.finish();
}

fn bench_cache_lookup(c: &mut Criterion) {
    let cache = TrajectoryCache::new(1 << 14);
    let workload = build(Benchmark::Collatz, Scale::Tiny).unwrap();
    let state = workload.program.initial_state().unwrap();
    for i in 0..1000u32 {
        cache.insert(CacheEntry::new(
            32,
            SparseBytes::from_pairs(vec![(100 + i, (i % 251) as u8), (4, 0)]),
            SparseBytes::from_pairs(vec![(200, 1)]),
            500,
        ));
    }
    c.bench_function("cache_lookup_1000_entries", |b| {
        b.iter(|| cache.peek(black_box(32), black_box(&state)))
    });
}

fn bench_predictor_update_and_rollout(c: &mut Criterion) {
    // Collect occurrence states from the Collatz outer loop and time the
    // predictor bank's update and rollout paths.
    let workload = build(Benchmark::Collatz, Scale::Tiny).unwrap();
    let config = AscConfig::for_tests();
    let mut machine = Machine::load(&workload.program).unwrap();
    machine.run(30_000).unwrap();
    let outcome =
        asc_core::recognizer::recognize(&workload.program.initial_state().unwrap(), &config)
            .unwrap();
    let rip = outcome.rip;
    let mut machine = Machine::from_state(outcome.resume_state.clone());
    let mut states = Vec::new();
    while states.len() < 64 && !machine.is_halted() {
        machine.run_until_ip(rip.ip, 1_000_000).unwrap();
        states.push(machine.state().clone());
    }
    let mut bank = PredictorBank::new(rip.ip, &config);
    for state in &states {
        bank.observe(state);
    }
    let last = states.last().unwrap().clone();
    c.bench_function("predictor_bank_observe", |b| {
        b.iter(|| {
            let mut fresh = PredictorBank::new(rip.ip, &config);
            for state in states.iter().take(16) {
                fresh.observe(black_box(state));
            }
            fresh.excited_bits()
        })
    });
    let mut group = c.benchmark_group("rollout_latency");
    for depth in [1usize, 4, 16, 64] {
        group.bench_function(format!("depth_{depth}"), |b| {
            b.iter(|| bank.rollout(black_box(&last), depth).len())
        });
    }
    group.finish();
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(10);
    targets = bench_transition, bench_cache_lookup, bench_predictor_update_and_rollout
);
criterion_main!(micro);
