//! §5.3 micro-benchmarks: simulation rate with and without dependency
//! tracking, cache lookup latency, predictor update cost and rollout latency.

use asc_core::cache::{CacheEntry, TrajectoryCache};
use asc_core::config::AscConfig;
use asc_core::predictor_bank::PredictorBank;
use asc_tvm::delta::SparseBytes;
use asc_tvm::deps::DepVector;
use asc_tvm::exec::{transition, transition_cached, transition_with, DecodedCache, NoDeps};
use asc_tvm::machine::Machine;
use asc_workloads::registry::{build, Benchmark, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// The seed-dispatch replica is shared with the `tier` bench (see
/// `asc_bench::seed_dispatch`): one permanent anchor, two comparisons.
use asc_bench::seed_dispatch;

fn bench_transition(c: &mut Criterion) {
    let workload = build(Benchmark::Collatz, Scale::Tiny).unwrap();
    let initial = workload.program.initial_state().unwrap();

    // Sanity: the seed replica and the current interpreter retire identical
    // trajectories, so the timing comparison is apples-to-apples.
    {
        let mut a = initial.clone();
        let mut b = initial.clone();
        for _ in 0..10_000 {
            let ra = seed_dispatch::transition(&mut a, None).unwrap();
            let rb = transition(&mut b, None).unwrap();
            assert_eq!(ra, rb);
            if ra == asc_tvm::exec::StepOutcome::Halted {
                break;
            }
        }
        assert_eq!(a, b);
    }

    let mut group = c.benchmark_group("transition");
    // The seed's dispatch: an Option<&mut DepVector> branch on every state
    // access plus a fetch+decode of 8 raw bytes per retired instruction.
    group.bench_function("seed_dispatch_1k_instructions", |b| {
        b.iter(|| {
            let mut state = initial.clone();
            for _ in 0..1000 {
                if seed_dispatch::transition(black_box(&mut state), None).unwrap()
                    == asc_tvm::exec::StepOutcome::Halted
                {
                    break;
                }
            }
            state
        })
    });
    group.bench_function("baseline_1k_instructions", |b| {
        b.iter(|| {
            let mut state = initial.clone();
            for _ in 0..1000 {
                if transition(black_box(&mut state), None).unwrap()
                    == asc_tvm::exec::StepOutcome::Halted
                {
                    break;
                }
            }
            state
        })
    });
    // Monomorphized no-deps sink, still decoding every fetch.
    group.bench_function("nodeps_monomorphized_1k_instructions", |b| {
        b.iter(|| {
            let mut state = initial.clone();
            for _ in 0..1000 {
                if transition_with(black_box(&mut state), &mut NoDeps).unwrap()
                    == asc_tvm::exec::StepOutcome::Halted
                {
                    break;
                }
            }
            state
        })
    });
    // The main thread's actual hot path: no-deps sink + decoded-instruction
    // cache (must be ≥1.5× the baseline dispatch above).
    group.bench_function("nodeps_decoded_cache_1k_instructions", |b| {
        b.iter(|| {
            let mut state = initial.clone();
            let mut icache = DecodedCache::new(&state);
            for _ in 0..1000 {
                if transition_cached(black_box(&mut state), &mut NoDeps, &mut icache).unwrap()
                    == asc_tvm::exec::StepOutcome::Halted
                {
                    break;
                }
            }
            state
        })
    });
    group.bench_function("dependency_tracking_1k_instructions", |b| {
        b.iter(|| {
            let mut state = initial.clone();
            let mut deps = DepVector::new(state.len_bytes());
            for _ in 0..1000 {
                if transition(black_box(&mut state), Some(&mut deps)).unwrap()
                    == asc_tvm::exec::StepOutcome::Halted
                {
                    break;
                }
            }
            deps.touched()
        })
    });
    group.finish();
}

fn bench_cache_lookup(c: &mut Criterion) {
    let cache = TrajectoryCache::new(1 << 14);
    let workload = build(Benchmark::Collatz, Scale::Tiny).unwrap();
    let state = workload.program.initial_state().unwrap();
    for i in 0..1000u32 {
        cache.insert(CacheEntry::new(
            32,
            SparseBytes::from_pairs(vec![(100 + i, (i % 251) as u8), (4, 0)]),
            SparseBytes::from_pairs(vec![(200, 1)]),
            500,
        ));
    }
    c.bench_function("cache_lookup_1000_entries", |b| {
        b.iter(|| cache.peek(black_box(32), black_box(&state)))
    });
}

fn bench_predictor_update_and_rollout(c: &mut Criterion) {
    // Collect occurrence states from the Collatz outer loop and time the
    // predictor bank's update and rollout paths.
    let workload = build(Benchmark::Collatz, Scale::Tiny).unwrap();
    let config = AscConfig::for_tests();
    let mut machine = Machine::load(&workload.program).unwrap();
    machine.run(30_000).unwrap();
    let outcome =
        asc_core::recognizer::recognize(&workload.program.initial_state().unwrap(), &config)
            .unwrap();
    let rip = outcome.rip;
    let mut machine = Machine::from_state(outcome.resume_state.clone());
    let mut states = Vec::new();
    while states.len() < 64 && !machine.is_halted() {
        machine.run_until_ip(rip.ip, 1_000_000).unwrap();
        states.push(machine.state().clone());
    }
    let mut bank = PredictorBank::new(rip.ip, &config);
    for state in &states {
        bank.observe(state);
    }
    let last = states.last().unwrap().clone();
    c.bench_function("predictor_bank_observe", |b| {
        b.iter(|| {
            let mut fresh = PredictorBank::new(rip.ip, &config);
            for state in states.iter().take(16) {
                fresh.observe(black_box(state));
            }
            fresh.excited_bits()
        })
    });
    let mut group = c.benchmark_group("rollout_latency");
    for depth in [1usize, 4, 16, 64] {
        group.bench_function(format!("depth_{depth}"), |b| {
            b.iter(|| bank.rollout(black_box(&last), depth).len())
        });
    }
    group.finish();
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(10);
    targets = bench_transition, bench_cache_lookup, bench_predictor_update_and_rollout
);
criterion_main!(micro);
