//! Trajectory-cache lookup benchmarks: the grouped value-hash index against
//! the reference linear scan, across the populations that matter.
//!
//! * **hit-heavy** — every entry shares one dependency shape and the query
//!   matches; the paper's well-predicted steady state.
//! * **miss-heavy** — one shape, nothing matches; the index answers with one
//!   value-hash probe per group where the scan byte-compares every entry.
//! * **junk-saturated** — 2k entries spread over a few hundred shapes, none
//!   matching: the chaotic-workload pathology (see the logistic-map
//!   benchmark) that made the old scan degrade quadratically. The junk
//!   filter is disabled here on purpose: the bench measures lookup cost at a
//!   given population, not the filter's ability to avoid the population.
//!
//! Each population runs at 16 shards (the production layout) and 1 shard
//! (no lock spreading, every group behind one lock), with the retained
//! `scan_best_match` timed alongside as the pre-index baseline. The
//! acceptance bar for the index was ≥5× over the scan on the junk-saturated
//! population.
//!
//! `accelerate_logistic_tiny_inline` times the end-to-end pathology the
//! index plus junk filter exist to fix: logistic-map Tiny, inline
//! speculation, where the cache fills with never-matching entries and
//! pre-index wall-clock was dominated by scan+match.

use asc_core::cache::{CacheEntry, TrajectoryCache};
use asc_core::config::AscConfig;
use asc_core::runtime::LascRuntime;
use asc_tvm::delta::SparseBytes;
use asc_tvm::state::StateVector;
use asc_workloads::registry::{build, Benchmark, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const RIP: u32 = 32;

fn state_with(bytes: &[(usize, u8)]) -> StateVector {
    let mut state = StateVector::new(4096).unwrap();
    for &(index, value) in bytes {
        state.set_byte(index, value);
    }
    state
}

fn entry(deps: Vec<(u32, u8)>, instructions: u64) -> CacheEntry {
    CacheEntry::new(
        RIP,
        SparseBytes::from_pairs(deps),
        SparseBytes::from_pairs(vec![(200, 1)]),
        instructions,
    )
}

/// 2k entries that all share one dependency shape; the query state matches
/// one of them.
fn hit_heavy(shards: usize) -> (TrajectoryCache, StateVector) {
    let cache = TrajectoryCache::with_layout(1 << 14, shards, 0);
    for i in 0..2000u32 {
        let value = (i % 251) as u8;
        let tag = (i / 251) as u8;
        cache.insert(entry(vec![(100, value), (101, tag), (4, 0)], 500));
    }
    // Matches the i == 0 entry; every other value hash misses.
    let state = state_with(&[(100, 0), (101, 0)]);
    assert!(cache.peek(RIP, &state).is_some(), "hit-heavy population must hit");
    (cache, state)
}

/// 2k entries sharing one shape, none matching the query.
fn miss_heavy(shards: usize) -> (TrajectoryCache, StateVector) {
    let cache = TrajectoryCache::with_layout(1 << 14, shards, 0);
    for i in 0..2000u32 {
        let value = (i % 251) as u8;
        let tag = (i / 251) as u8;
        cache.insert(entry(vec![(100, value), (101, tag), (4, 7)], 500));
    }
    // Byte 4 is 0 in the query, 7 in every entry: all miss.
    let state = state_with(&[(100, 0), (101, 0)]);
    assert!(cache.peek(RIP, &state).is_none(), "miss-heavy population must miss");
    (cache, state)
}

/// The chaotic pathology: 2k junk entries across 100 distinct dependency
/// shapes, none ever matching. Like real mispredicted-speculation read sets
/// (the logistic-map run), every entry *agrees* with the query on the
/// architectural header — the IP matches by construction and most registers
/// happen to agree too — and mismatches only in its per-superstep memory
/// dependencies, so the linear scan cannot early-exit: it byte-compares the
/// whole shared prefix of every entry, while the index answers each shape
/// with one value-hash probe.
fn junk_saturated(shards: usize) -> (TrajectoryCache, StateVector) {
    let cache = TrajectoryCache::with_layout(1 << 14, shards, 0);
    // 40-byte header prefix (positions 0..40, all zero — agreeing with the
    // query state), then two shape-specific memory positions whose values
    // never match the (all-zero) query.
    let header: Vec<(u32, u8)> = (0..40u32).map(|p| (p, 0)).collect();
    for i in 0..2000u32 {
        let shape = i % 100;
        let mut deps = header.clone();
        deps.push((500 + 2 * shape, (i % 250) as u8 + 1));
        deps.push((501 + 2 * shape, (i / 100) as u8));
        cache.insert(entry(deps, 500));
    }
    let state = state_with(&[]);
    assert!(cache.peek(RIP, &state).is_none(), "junk population must miss");
    (cache, state)
}

/// A benchmark population: the cache to probe and the query state.
type Population = fn(usize) -> (TrajectoryCache, StateVector);

fn bench_lookup(c: &mut Criterion) {
    let populations: [(&str, Population); 3] =
        [("hit_heavy", hit_heavy), ("miss_heavy", miss_heavy), ("junk_2k", junk_saturated)];
    let mut group = c.benchmark_group("cache_lookup");
    for (name, populate) in populations {
        for shards in [16usize, 1] {
            let (cache, state) = populate(shards);
            group.bench_function(format!("{name}_indexed_shards{shards}"), |b| {
                b.iter(|| cache.peek(black_box(RIP), black_box(&state)))
            });
            group.bench_function(format!("{name}_scan_shards{shards}"), |b| {
                b.iter(|| cache.scan_best_match(black_box(RIP), black_box(&state)))
            });
        }
    }
    group.finish();
}

fn bench_logistic_inline(c: &mut Criterion) {
    // The config_for(Scale::Tiny) harness configuration: rollout depth 32,
    // so a chaotic run attempts tens of thousands of junk inserts.
    let workload = build(Benchmark::LogisticMap, Scale::Tiny).unwrap();
    let config =
        AscConfig { explore_instructions: 6_000, min_superstep: 50, ..AscConfig::default() };
    let runtime = LascRuntime::new(config).unwrap();
    c.bench_function("accelerate_logistic_tiny_inline", |b| {
        b.iter(|| {
            let report = runtime.accelerate(black_box(&workload.program)).unwrap();
            assert!(workload.verify(&report.final_state));
            report.cache_stats.queries
        })
    });
}

criterion_group!(
    name = cache;
    config = Criterion::default().sample_size(10);
    targets = bench_lookup, bench_logistic_inline
);
criterion_main!(cache);
