//! Tier-up dispatch micro-benchmarks: the seed's dispatch (permanent
//! anchor) vs the tier-0 monomorphized `transition_cached` hot path vs
//! tier-1 block-threaded dispatch of compiled, fused micro-op blocks — on
//! the no-deps counting loop and on a fused-chain-heavy kernel.
//!
//! The bench gate's acceptance bar: `block_threaded_1k_loop` must be at
//! least 1.5× faster (minimum over samples) than
//! `transition_cached_1k_loop`. The block cache is warmed outside the timed
//! loop: a hot region is compiled once and replayed for thousands of
//! supersteps, so steady-state dispatch — not the one-time compile — is
//! what the main loop actually pays.

use asc_bench::seed_dispatch;
use asc_tvm::encode::encode_all;
use asc_tvm::exec::{transition_cached, DecodedCache, NoDeps, StepOutcome};
use asc_tvm::isa::{Instruction as I, Opcode, Reg, SP};
use asc_tvm::state::StateVector;
use asc_tvm::tier::{run_segment, BlockCache, SegmentExit, TierConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn r(i: u8) -> Reg {
    Reg::new(i).unwrap()
}

fn state_with(program: &[I], mem: usize) -> StateVector {
    let mut state = StateVector::new(mem).unwrap();
    state.write_mem(0, &encode_all(program)).unwrap();
    state.set_reg(SP, mem as u32);
    state
}

/// The no-deps 1k-instruction micro kernel: a counting loop whose 4-wide
/// body (arith/arith pair + fused compare-and-branch) never halts within
/// the benchmarked budget.
fn counting_loop() -> StateVector {
    state_with(
        &[
            I::ri(Opcode::MovI, r(1), 1_000_000),
            I::ri(Opcode::MovI, r(2), 0),
            I::rrr(Opcode::Add, r(2), r(2), r(1)), // addr 16 (loop head)
            I::rri(Opcode::AddI, r(1), r(1), -1),
            I::ri(Opcode::CmpI, r(1), 0),
            I::i(Opcode::Jne, 16),
            I::bare(Opcode::Halt),
        ],
        4096,
    )
}

/// A fused-chain-heavy kernel: the loop body is a straight line of
/// load/op, op/op and op/store pairs, so nearly every micro-op in the
/// compiled block is a superinstruction.
fn fused_chain() -> StateVector {
    state_with(
        &[
            I::ri(Opcode::MovI, r(1), 1_000_000),
            I::ri(Opcode::MovI, r(2), 0), // base register for the data cell
            I::rri(Opcode::LdW, r(4), r(2), 2048), // addr 16 (loop head)
            I::rrr(Opcode::Add, r(4), r(4), r(1)), // fuses with the load
            I::rrr(Opcode::Xor, r(5), r(4), r(1)),
            I::rrr(Opcode::Add, r(5), r(5), r(4)), // op/op pair
            I::rri(Opcode::ShlI, r(6), r(5), 1),
            I::rri(Opcode::StW, r(2), r(6), 2048), // op/store pair
            I::rri(Opcode::AddI, r(1), r(1), -1),
            I::ri(Opcode::CmpI, r(1), 0), // fuses with the branch
            I::i(Opcode::Jne, 16),
            I::bare(Opcode::Halt),
        ],
        8192,
    )
}

/// A `BlockCache` with every region already compiled for `initial`, so the
/// timed loop measures steady-state block-threaded dispatch.
fn warmed_cache(initial: &StateVector, budget: u64) -> BlockCache {
    let config = TierConfig { enabled: true, hot_threshold: 1, max_block_len: 64 };
    let mut cache = BlockCache::new(initial, config);
    let mut state = initial.clone();
    let (_, exit) = run_segment(&mut state, &mut NoDeps, &mut cache, u32::MAX, budget);
    assert!(matches!(exit, SegmentExit::Budget), "warm-up kernel exited early: {exit:?}");
    assert!(cache.stats().blocks_compiled > 0, "warm-up compiled nothing");
    cache
}

/// Retires exactly `budget` instructions of `initial` through each of the
/// three dispatch layers and asserts bit-identical final states, so the
/// timing comparison below is apples-to-apples.
fn assert_dispatch_layers_agree(initial: &StateVector, cache: &mut BlockCache, budget: u64) {
    let mut seed = initial.clone();
    for _ in 0..budget {
        let outcome = seed_dispatch::transition(&mut seed, None).unwrap();
        assert_eq!(outcome, StepOutcome::Continue, "kernel halted inside the budget");
    }
    let mut cached = initial.clone();
    let mut icache = DecodedCache::new(&cached);
    for _ in 0..budget {
        let outcome = transition_cached(&mut cached, &mut NoDeps, &mut icache).unwrap();
        assert_eq!(outcome, StepOutcome::Continue);
    }
    let mut tiered = initial.clone();
    let (retired, exit) = run_segment(&mut tiered, &mut NoDeps, cache, u32::MAX, budget);
    assert_eq!(retired, budget, "tiered dispatch miscounted ({exit:?})");
    assert_eq!(seed, cached, "transition_cached diverged from the seed replica");
    assert_eq!(seed, tiered, "block-threaded dispatch diverged from the seed replica");
}

fn bench_kernel(c: &mut Criterion, label: &str, initial: &StateVector) {
    const BUDGET: u64 = 1000;
    let mut cache = warmed_cache(initial, BUDGET);
    assert_dispatch_layers_agree(initial, &mut cache, BUDGET);

    let mut group = c.benchmark_group("tier");
    // The permanent anchor: the seed's dispatch, re-fetching and re-decoding
    // every instruction with an Option<&mut DepVector> branch per access.
    group.bench_function(format!("seed_dispatch_1k_{label}"), |b| {
        b.iter(|| {
            let mut state = initial.clone();
            for _ in 0..BUDGET {
                if seed_dispatch::transition(black_box(&mut state), None).unwrap()
                    == StepOutcome::Halted
                {
                    break;
                }
            }
            state
        })
    });
    // Tier-0: the monomorphized single-step hot path with a decoded cache.
    group.bench_function(format!("transition_cached_1k_{label}"), |b| {
        b.iter(|| {
            let mut state = initial.clone();
            let mut icache = DecodedCache::new(&state);
            for _ in 0..BUDGET {
                if transition_cached(black_box(&mut state), &mut NoDeps, &mut icache).unwrap()
                    == StepOutcome::Halted
                {
                    break;
                }
            }
            state
        })
    });
    // Tier-1: block-threaded dispatch over pre-compiled fused micro-ops
    // (must be ≥ 1.5× the tier-0 path above on the counting loop).
    group.bench_function(format!("block_threaded_1k_{label}"), |b| {
        b.iter(|| {
            let mut state = initial.clone();
            let (retired, _) =
                run_segment(black_box(&mut state), &mut NoDeps, &mut cache, u32::MAX, BUDGET);
            assert_eq!(retired, BUDGET);
            state
        })
    });
    group.finish();
}

fn bench_tier_dispatch(c: &mut Criterion) {
    bench_kernel(c, "loop", &counting_loop());
    bench_kernel(c, "fused_chain", &fused_chain());
}

criterion_group!(
    name = tier;
    config = Criterion::default().sample_size(20);
    targets = bench_tier_dispatch
);
criterion_main!(tier);
