//! Checkpoint benchmarks: the durability tier's edge costs and its
//! steady-state tax on an accelerated run.
//!
//! * **checkpoint_save / checkpoint_load** — one full checkpoint frame
//!   encode (per-section checksums, whole-file checksum chain, tmp+rename)
//!   of a realistic run state (4 KiB state vector plus serialized
//!   predictor-bank and economics blobs), and the scan+verify+decode back
//!   out of it. Save is the per-interval cost the `checkpoint.interval`
//!   config must be read against; load is the one-time resume cost.
//! * **checkpoint_fingerprint** — the config+initial-state fingerprint
//!   computed once per `accelerate` call, checkpointing on or off.
//! * **accelerate_collatz_tiny_checkpointed** — the end-to-end steady
//!   state: the same run as `accelerate_collatz_tiny` with checkpointing
//!   on at the default interval, so drift in the occurrence-loop tick
//!   (heartbeat + interval check + save) is caught by the bench gate. The
//!   <5% on/off bound itself is asserted by `kill_resume_soak overhead`.
//!
//! All four feed `bench/baseline.json` through the blocking CI bench gate.

use asc_bench::config_for;
use asc_core::checkpoint::{self, RunCheckpoint};
use asc_core::config::AscConfig;
use asc_core::recognizer::RecognizedIp;
use asc_core::runtime::LascRuntime;
use asc_workloads::registry::{build, Benchmark, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::path::PathBuf;

/// A realistic mid-run checkpoint: a 4 KiB state vector and learned-state
/// blobs in the size range the miss-driven path serializes.
fn sample_checkpoint() -> RunCheckpoint {
    RunCheckpoint {
        sequence: 1,
        fingerprint: 0xfee1_600d,
        occurrence: 4_096,
        rip: RecognizedIp {
            ip: 32,
            stride: 1,
            mean_superstep: 1_800.0,
            accuracy: 0.85,
            score: 1_530.0,
        },
        unique_ips: 40,
        converge_instructions: 80_000,
        resume_instret: 9_000_000,
        fast_forwarded: 4_000_000,
        state: (0..4096u32).map(|i| (i % 251) as u8).collect(),
        bank: Some((0..2048u32).map(|i| (i % 13) as u8).collect()),
        economics: Some((0..256u32).map(|i| (i % 7) as u8).collect()),
    }
}

fn bench_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("asc-bench-checkpoint-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bench_save_load(c: &mut Criterion) {
    let ckpt = sample_checkpoint();

    let dir = bench_dir("save");
    c.bench_function("checkpoint_save", |b| {
        b.iter(|| checkpoint::save(black_box(&dir), black_box(&ckpt), 3).unwrap())
    });
    let _ = std::fs::remove_dir_all(&dir);

    let dir = bench_dir("load");
    checkpoint::save(&dir, &ckpt, 3).unwrap();
    c.bench_function("checkpoint_load", |b| {
        b.iter(|| {
            let scan = checkpoint::load_newest(black_box(&dir), ckpt.fingerprint);
            let found = scan.checkpoint.expect("intact checkpoint loads");
            assert_eq!(scan.rejected_files, 0);
            found.occurrence
        })
    });
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_fingerprint(c: &mut Criterion) {
    let workload = build(Benchmark::Collatz, Scale::Tiny).unwrap();
    let initial = workload.program.initial_state().unwrap();
    let config = AscConfig::default();
    c.bench_function("checkpoint_fingerprint", |b| {
        b.iter(|| checkpoint::run_fingerprint(black_box(&config), black_box(&initial)))
    });
}

fn bench_checkpointed_run(c: &mut Criterion) {
    let workload = build(Benchmark::Collatz, Scale::Tiny).unwrap();
    let dir = bench_dir("run");
    let mut config = config_for(Scale::Tiny);
    config.checkpoint.enabled = true;
    config.checkpoint.directory = Some(dir.clone());
    let runtime = LascRuntime::new(config).unwrap();
    c.bench_function("accelerate_collatz_tiny_checkpointed", |b| {
        b.iter(|| {
            let report = runtime.accelerate(black_box(&workload.program)).unwrap();
            assert!(workload.verify(&report.final_state));
            report.fast_forwarded_instructions
        })
    });
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_save_load, bench_fingerprint, bench_checkpointed_run);
criterion_main!(benches);
