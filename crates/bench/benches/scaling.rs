//! End-to-end scaling ablations: the cluster model replayed over a measured
//! trace (cheap once the trace exists), plus the ablation comparisons called
//! out in DESIGN.md (dependency-masked vs full-state matching is exercised in
//! the integration tests; here we time the replay itself and the accelerated
//! in-process runtime).

use asc_bench::config_for;
use asc_core::cluster::{simulate, PlatformProfile, ScalingMode};
use asc_core::runtime::LascRuntime;
use asc_workloads::registry::{build, Benchmark, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_cluster_replay(c: &mut Criterion) {
    let workload = build(Benchmark::Collatz, Scale::Tiny).unwrap();
    let runtime = LascRuntime::new(config_for(Scale::Tiny)).unwrap();
    let report = runtime.measure(&workload.program).unwrap();
    let profile = PlatformProfile::blue_gene_p();
    let mut group = c.benchmark_group("cluster_replay");
    for cores in [32usize, 1024, 16_384] {
        group.bench_function(format!("cores_{cores}"), |b| {
            b.iter(|| simulate(black_box(&report), &profile, ScalingMode::Lasc, cores))
        });
    }
    group.finish();
}

fn bench_accelerated_runtime(c: &mut Criterion) {
    let workload = build(Benchmark::Collatz, Scale::Tiny).unwrap();
    let runtime = LascRuntime::new(config_for(Scale::Tiny)).unwrap();
    c.bench_function("accelerate_collatz_tiny", |b| {
        b.iter(|| {
            let report = runtime.accelerate(black_box(&workload.program)).unwrap();
            assert!(workload.verify(&report.final_state));
            report.fast_forwarded_instructions
        })
    });
}

fn bench_worker_pool_wall_clock(c: &mut Criterion) {
    // Inline (workers = 0) vs a real worker pool, in the paper's regime:
    // supersteps long enough (≥ min_superstep instructions) that executing
    // speculation dominates predicting it. Offloading those supersteps to
    // workers must beat paying for them inline on the main thread. Results
    // are asserted identical to the pure-Rust reference either way.
    let workload = build(Benchmark::Collatz, Scale::Small).unwrap();
    for workers in [0usize, 2, 4] {
        let config = asc_core::config::AscConfig {
            explore_instructions: 20_000,
            min_superstep: 5_000,
            rollout_depth: 8,
            workers,
            ..asc_core::config::AscConfig::default()
        };
        let runtime = LascRuntime::new(config).unwrap();
        c.bench_function(format!("accelerate_collatz_small_workers_{workers}"), |b| {
            b.iter(|| {
                let report = runtime.accelerate(black_box(&workload.program)).unwrap();
                assert!(workload.verify(&report.final_state));
                report.fast_forwarded_instructions
            })
        });
    }
}

criterion_group!(
    name = scaling;
    config = Criterion::default().sample_size(10);
    targets = bench_cluster_replay, bench_accelerated_runtime, bench_worker_pool_wall_clock
);
criterion_main!(scaling);
