//! End-to-end scaling ablations: the cluster model replayed over a measured
//! trace (cheap once the trace exists), plus the ablation comparisons called
//! out in DESIGN.md (dependency-masked vs full-state matching is exercised in
//! the integration tests; here we time the replay itself and the accelerated
//! in-process runtime).

use asc_bench::{config_for, small_collatz_config};
use asc_core::cluster::{simulate, PlatformProfile, ScalingMode};
use asc_core::runtime::LascRuntime;
use asc_workloads::registry::{build, Benchmark, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_cluster_replay(c: &mut Criterion) {
    let workload = build(Benchmark::Collatz, Scale::Tiny).unwrap();
    let runtime = LascRuntime::new(config_for(Scale::Tiny)).unwrap();
    let report = runtime.measure(&workload.program).unwrap();
    let profile = PlatformProfile::blue_gene_p();
    let mut group = c.benchmark_group("cluster_replay");
    for cores in [32usize, 1024, 16_384] {
        group.bench_function(format!("cores_{cores}"), |b| {
            b.iter(|| simulate(black_box(&report), &profile, ScalingMode::Lasc, cores))
        });
    }
    group.finish();
}

fn bench_accelerated_runtime(c: &mut Criterion) {
    let workload = build(Benchmark::Collatz, Scale::Tiny).unwrap();
    let runtime = LascRuntime::new(config_for(Scale::Tiny)).unwrap();
    c.bench_function("accelerate_collatz_tiny", |b| {
        b.iter(|| {
            let report = runtime.accelerate(black_box(&workload.program)).unwrap();
            assert!(workload.verify(&report.final_state));
            report.fast_forwarded_instructions
        })
    });
}

fn bench_worker_pool_wall_clock(c: &mut Criterion) {
    // Inline (workers = 0) vs a real worker pool with PR 1's miss-driven
    // dispatch (the planner explicitly disabled, so these stay comparable
    // across PRs as the miss-driven anchor). Results are asserted identical
    // to the pure-Rust reference either way.
    let workload = build(Benchmark::Collatz, Scale::Small).unwrap();
    for workers in [0usize, 2, 4] {
        let runtime = LascRuntime::new(small_collatz_config(workers, false)).unwrap();
        c.bench_function(format!("accelerate_collatz_small_workers_{workers}"), |b| {
            b.iter(|| {
                let report = runtime.accelerate(black_box(&workload.program)).unwrap();
                assert!(workload.verify(&report.final_state));
                report.fast_forwarded_instructions
            })
        });
    }
}

fn bench_planner_wall_clock(c: &mut Criterion) {
    // The continuous-speculation planner on the same workload and worker
    // counts as the miss-driven anchor above. The planner's higher hit rate
    // shows up as fast-forwarded instructions; wall-clock parity or better
    // is the bar on core-starved machines, a win on real multicore.
    let workload = build(Benchmark::Collatz, Scale::Small).unwrap();
    for workers in [2usize, 4] {
        let runtime = LascRuntime::new(small_collatz_config(workers, true)).unwrap();
        c.bench_function(format!("accelerate_collatz_small_planner_{workers}"), |b| {
            b.iter(|| {
                let report = runtime.accelerate(black_box(&workload.program)).unwrap();
                assert!(workload.verify(&report.final_state));
                report.fast_forwarded_instructions
            })
        });
    }
}

criterion_group!(
    name = scaling;
    config = Criterion::default().sample_size(10);
    targets = bench_cluster_replay, bench_accelerated_runtime, bench_worker_pool_wall_clock,
        bench_planner_wall_clock
);
criterion_main!(scaling);
