//! Per-byte dependency tracking for speculative execution.
//!
//! The paper's transition function accumulates dependency information in a
//! vector `g` at byte granularity: each byte of the state vector carries one
//! of four statuses — `null`, `read`, `written` or `written after read` —
//! maintained by a small finite state machine on every access (§4.1).
//!
//! The read set (`read` ∪ `written after read`) identifies exactly the bytes
//! a speculative execution *depended on*; the write set (`written` ∪
//! `written after read`) identifies the bytes it *produced*. The trajectory
//! cache matches new queries against the read set only and fast-forwards by
//! applying the write set, which is what lets a single cache entry be reused
//! from many different full states.

/// Dependency status of one state-vector byte.
///
/// The transition diagram (applied on every byte access) is:
///
/// ```text
///            read               write
/// Null ────────────► Read ───────────────► WrittenAfterRead
///   │                                              ▲
///   │ write                              read/write│ (absorbing)
///   └──────────► Written ── read/write ──► Written │
/// ```
///
/// `Written` stays `Written` on subsequent reads because the value read was
/// produced by the speculation itself and is therefore not an external
/// dependency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(u8)]
pub enum DepStatus {
    /// The byte has not been touched.
    #[default]
    Null = 0,
    /// The byte was read before ever being written: an external dependency.
    Read = 1,
    /// The byte was written before ever being read: an output only.
    Written = 2,
    /// The byte was read first and later written: both dependency and output.
    WrittenAfterRead = 3,
}

impl DepStatus {
    /// Whether this byte is part of the read (dependency) set.
    pub fn in_read_set(self) -> bool {
        matches!(self, DepStatus::Read | DepStatus::WrittenAfterRead)
    }

    /// Whether this byte is part of the write (output) set.
    pub fn in_write_set(self) -> bool {
        matches!(self, DepStatus::Written | DepStatus::WrittenAfterRead)
    }

    /// The status after observing a read of this byte.
    pub fn after_read(self) -> Self {
        match self {
            DepStatus::Null => DepStatus::Read,
            other => other,
        }
    }

    /// The status after observing a write of this byte.
    pub fn after_write(self) -> Self {
        match self {
            DepStatus::Null => DepStatus::Written,
            DepStatus::Read => DepStatus::WrittenAfterRead,
            other => other,
        }
    }
}

/// Dependency vector: one [`DepStatus`] per state-vector byte.
///
/// # Examples
/// ```
/// use asc_tvm::deps::{DepStatus, DepVector};
/// let mut g = DepVector::new(16);
/// g.note_read(3);
/// g.note_write(3);
/// g.note_write(5);
/// assert_eq!(g.status(3), DepStatus::WrittenAfterRead);
/// assert_eq!(g.read_set(), vec![3]);
/// assert_eq!(g.write_set(), vec![3, 5]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepVector {
    status: Vec<DepStatus>,
}

impl DepVector {
    /// Creates an all-`Null` dependency vector covering `len_bytes` state bytes.
    pub fn new(len_bytes: usize) -> Self {
        DepVector { status: vec![DepStatus::Null; len_bytes] }
    }

    /// Number of tracked bytes.
    pub fn len(&self) -> usize {
        self.status.len()
    }

    /// Whether the vector tracks zero bytes.
    pub fn is_empty(&self) -> bool {
        self.status.is_empty()
    }

    /// Resets every byte to `Null`, as a speculative worker does before
    /// starting a new superstep.
    pub fn reset(&mut self) {
        self.status.fill(DepStatus::Null);
    }

    /// Resets the vector for a state of `len_bytes` bytes, reusing the
    /// existing allocation when the size is unchanged. Long-lived speculation
    /// workers call this between jobs instead of constructing a fresh
    /// [`DepVector`] per superstep.
    pub fn reset_for(&mut self, len_bytes: usize) {
        if self.status.len() == len_bytes {
            self.status.fill(DepStatus::Null);
        } else {
            self.status.clear();
            self.status.resize(len_bytes, DepStatus::Null);
        }
    }

    /// The status of byte `index`.
    ///
    /// # Panics
    /// Panics when `index` is out of bounds.
    pub fn status(&self, index: usize) -> DepStatus {
        self.status[index]
    }

    /// Records a read of byte `index`.
    #[inline]
    pub fn note_read(&mut self, index: usize) {
        let s = &mut self.status[index];
        *s = s.after_read();
    }

    /// Records a write of byte `index`.
    #[inline]
    pub fn note_write(&mut self, index: usize) {
        let s = &mut self.status[index];
        *s = s.after_write();
    }

    /// Records a read of `len` consecutive bytes starting at `index`.
    #[inline]
    pub fn note_read_range(&mut self, index: usize, len: usize) {
        for i in index..index + len {
            self.note_read(i);
        }
    }

    /// Records a write of `len` consecutive bytes starting at `index`.
    #[inline]
    pub fn note_write_range(&mut self, index: usize, len: usize) {
        for i in index..index + len {
            self.note_write(i);
        }
    }

    /// Byte indices the computation depended on (status `Read` or
    /// `WrittenAfterRead`), in increasing order.
    pub fn read_set(&self) -> Vec<usize> {
        self.status
            .iter()
            .enumerate()
            .filter_map(|(i, s)| if s.in_read_set() { Some(i) } else { None })
            .collect()
    }

    /// Byte indices the computation produced (status `Written` or
    /// `WrittenAfterRead`), in increasing order.
    pub fn write_set(&self) -> Vec<usize> {
        self.status
            .iter()
            .enumerate()
            .filter_map(|(i, s)| if s.in_write_set() { Some(i) } else { None })
            .collect()
    }

    /// Number of bytes with a non-`Null` status.
    pub fn touched(&self) -> usize {
        self.status.iter().filter(|s| **s != DepStatus::Null).count()
    }

    /// Iterates over `(index, status)` pairs for non-`Null` bytes.
    pub fn iter_touched(&self) -> impl Iterator<Item = (usize, DepStatus)> + '_ {
        self.status.iter().enumerate().filter(|(_, s)| **s != DepStatus::Null).map(|(i, s)| (i, *s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fsm_transitions_match_paper() {
        // read then write => written-after-read
        assert_eq!(DepStatus::Null.after_read().after_write(), DepStatus::WrittenAfterRead);
        // write then read => still written (value came from the speculation itself)
        assert_eq!(DepStatus::Null.after_write().after_read(), DepStatus::Written);
        // written-after-read is absorbing
        assert_eq!(DepStatus::WrittenAfterRead.after_read(), DepStatus::WrittenAfterRead);
        assert_eq!(DepStatus::WrittenAfterRead.after_write(), DepStatus::WrittenAfterRead);
        // repeated reads stay read
        assert_eq!(DepStatus::Read.after_read(), DepStatus::Read);
    }

    #[test]
    fn read_and_write_sets() {
        let mut g = DepVector::new(8);
        g.note_read(0); // read only
        g.note_write(1); // write only
        g.note_read(2);
        g.note_write(2); // read then write
        g.note_write(3);
        g.note_read(3); // write then read: output only
        assert_eq!(g.read_set(), vec![0, 2]);
        assert_eq!(g.write_set(), vec![1, 2, 3]);
        assert_eq!(g.touched(), 4);
    }

    #[test]
    fn reset_clears_everything() {
        let mut g = DepVector::new(4);
        g.note_read_range(0, 4);
        assert_eq!(g.touched(), 4);
        g.reset();
        assert_eq!(g.touched(), 0);
        assert!(g.read_set().is_empty());
        assert!(g.write_set().is_empty());
    }

    #[test]
    fn range_helpers_cover_every_byte() {
        let mut g = DepVector::new(10);
        g.note_write_range(2, 4);
        assert_eq!(g.write_set(), vec![2, 3, 4, 5]);
        g.note_read_range(4, 3);
        // bytes 4,5 were already written, so a later read does not make them dependencies
        assert_eq!(g.read_set(), vec![6]);
    }

    #[test]
    fn iter_touched_matches_sets() {
        let mut g = DepVector::new(6);
        g.note_read(1);
        g.note_write(4);
        let touched: Vec<_> = g.iter_touched().collect();
        assert_eq!(touched, vec![(1, DepStatus::Read), (4, DepStatus::Written)]);
    }
}
