//! Tier-1 execution: superinstruction fusion and block-threaded dispatch of
//! hot straight-line regions.
//!
//! Tier-0 ([`crate::exec`]) retires one decoded instruction per dispatch:
//! every retired instruction pays an IP read, a decode-cache probe, an
//! opcode dispatch and an IP write. This module is the classic interpreter
//! tier-up, built without native code generation (the build environment is
//! offline, which rules out a JIT backend): once an entry address crosses a
//! hotness threshold, the straight-line region starting there is compiled
//! into a [`CompiledBlock`] of pre-decoded, *fused* micro-ops —
//! arith/arith chains, load/op and op/store pairs, and compare+branch
//! collapsed into single handlers — and executed by a block-threaded
//! dispatch loop that touches the IP once at block entry and once at exit.
//!
//! ## Correctness contract
//!
//! Tier-1 must be indistinguishable from tier-0 in every observable way:
//!
//! * **State.** Each micro-op replays the interpreter's per-opcode executor
//!   (`exec_operate`, shared with [`transition_cached`]) in the same order,
//!   so final states are bit-identical.
//! * **Dependencies.** Blocks are generic over [`DepSink`], monomorphized
//!   like the tier-0 hot path. Fetch reads are recorded per *retired*
//!   constituent at execution time (never at compile time), operand
//!   accesses go through the same [`Ctx`] accessors, and the only elisions
//!   — intermediate IP reads/writes inside a block, and the flags read of a
//!   fused compare+branch — are exactly the accesses the dependency FSM
//!   (`null → read → written → written-after-read`) proves unobservable:
//!   a read immediately after a write never changes a byte's FSM state.
//! * **Accounting.** Instruction counts are exact at every boundary: a
//!   block stops *before* a micro-op that would overrun the caller's budget
//!   or cross an interior stop IP, and a faulting constituent retires
//!   nothing (with the IP left exactly where the interpreter would leave
//!   it), so superstep sizes, job deadlines and fault-injection ordinals
//!   all see the same retired-instruction stream as tier-0.
//! * **Staleness.** A [`BlockCache`] *contains* the tier-0
//!   [`DecodedCache`] and implements [`DecodeCache`] itself, so every store
//!   funnels through one `invalidate` call that clears both decoded slots
//!   and overlapping compiled blocks — the two tiers cannot disagree about
//!   what is stale. A store into the *currently executing* block stops it
//!   at the end of the current micro-op, which is precisely where the
//!   interpreter would next re-fetch the modified bytes.
//!
//! The driver, [`run_segment`], interleaves block execution with tier-0
//! single-stepping (hotness is only consulted at jump arrivals, so
//! sequential fall-through pays nothing) and is the engine under both the
//! main thread's `Machine::run_until_ip` and worker supersteps.

use crate::error::{VmError, VmResult};
use crate::exec::{
    branch_taken, exec_operate, transition_cached, Ctx, DecodeCache, DecodedCache, DepSink,
    StepOutcome,
};
use crate::isa::{Flags, Instruction, Opcode, INSTRUCTION_BYTES};
use crate::state::{StateVector, IP_OFFSET, MEM_BASE};

/// Tuning knobs for tier-1 execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierConfig {
    /// Master switch. When `false`, a [`BlockCache`] degrades to exactly a
    /// [`DecodedCache`]: no hotness tracking, no compilation, no per-store
    /// block scan beyond one empty-list check.
    pub enabled: bool,
    /// Number of jump arrivals at an entry address before the region is
    /// compiled. Seeded entries ([`BlockCache::seed_hot`], fed from the
    /// recognizer's hot IPs) skip the count and compile on first arrival.
    pub hot_threshold: u32,
    /// Maximum number of constituent instructions per compiled block.
    pub max_block_len: usize,
}

impl Default for TierConfig {
    fn default() -> Self {
        TierConfig { enabled: true, hot_threshold: 16, max_block_len: 64 }
    }
}

impl TierConfig {
    /// A configuration with the tier switched off (pure tier-0 execution).
    pub fn disabled() -> Self {
        TierConfig { enabled: false, ..TierConfig::default() }
    }
}

/// Counters describing what a [`BlockCache`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Regions compiled into blocks (recompiles after invalidation count).
    pub blocks_compiled: u64,
    /// Compiled blocks dropped because a store hit their code bytes.
    pub blocks_invalidated: u64,
    /// Multi-instruction micro-ops emitted across all compilations
    /// (arith/arith, load/op, op/store pairs and fused compare+branch).
    pub fused_ops: u64,
    /// Instructions retired by block-threaded dispatch.
    pub tier1_instructions: u64,
    /// Instructions retired by tier-0 single-stepping inside
    /// [`run_segment`] (cold regions, fallbacks, boundary slack).
    pub tier0_instructions: u64,
}

impl TierStats {
    /// Accumulates another stats snapshot into this one.
    pub fn merge(&mut self, other: &TierStats) {
        self.blocks_compiled += other.blocks_compiled;
        self.blocks_invalidated += other.blocks_invalidated;
        self.fused_ops += other.fused_ops;
        self.tier1_instructions += other.tier1_instructions;
        self.tier0_instructions += other.tier0_instructions;
    }

    /// Total instructions retired under [`run_segment`].
    pub fn instructions(&self) -> u64 {
        self.tier1_instructions + self.tier0_instructions
    }
}

/// One fused micro-op: up to two straight-line constituents, or a block
/// terminator. `first` is the index (in constituent instructions from the
/// block entry) of the micro-op's first constituent.
#[derive(Debug, Clone, Copy)]
struct MicroOp {
    kind: OpKind,
    first: u16,
    count: u16,
    /// Whether any constituent can write memory (`stw`/`stb`/`push`). Only
    /// such micro-ops can invalidate the executing block, so only they pay
    /// the post-op invalidation check.
    writes_mem: bool,
}

#[derive(Debug, Clone, Copy)]
enum OpKind {
    /// A single straight-line instruction, pre-lowered.
    One(Lowered),
    /// Two fused straight-line instructions (arith/arith, load/op or
    /// op/store — a store is only ever the *final* constituent, so a fused
    /// pair can never execute stale code it modified itself).
    Pair(Lowered, Lowered),
    /// An unconditional `jmp` terminator.
    Jump { target: u32 },
    /// A conditional-jump terminator, optionally fused with the `cmp`/`cmpi`
    /// immediately before it (the compare's right-hand operand pre-lowered).
    Branch { cmp: Option<(u8, CmpRhs)>, opcode: Opcode, target: u32 },
}

/// A straight-line constituent after compile-time lowering. The non-faulting
/// ALU forms skip the generic opcode dispatch, the immediate-form opcode
/// remapping and the fault plumbing of `exec_operate`; everything else runs
/// through `exec_operate` unchanged. Operand accesses happen in exactly the
/// interpreter's order either way.
#[derive(Debug, Clone, Copy)]
enum Lowered {
    /// `movi d, imm`.
    MovImm { d: u8, imm: u32 },
    /// A non-faulting register-register ALU op (`d = a <op> b`).
    AluRR { op: AluKind, d: u8, a: u8, b: u8 },
    /// A non-faulting register-immediate ALU op (`d = a <op> imm`).
    AluRI { op: AluKind, d: u8, a: u8, imm: u32 },
    /// Any other straight-line instruction, executed by `exec_operate`.
    Generic(Instruction),
}

/// The non-faulting ALU operations (`div`/`rem` stay [`Lowered::Generic`]).
#[derive(Debug, Clone, Copy)]
enum AluKind {
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Sar,
}

/// The right-hand operand of a fused compare: a register or an immediate,
/// resolved at compile time.
#[derive(Debug, Clone, Copy)]
enum CmpRhs {
    Reg(u8),
    Imm(u32),
}

/// A compiled straight-line region: pre-decoded, fused, with a raw snapshot
/// of the code bytes it was compiled from so long-lived caches can
/// revalidate it against a fresh state (see [`BlockCache::reset_for`]).
#[derive(Debug, Clone)]
struct CompiledBlock {
    /// Memory address of the first constituent instruction.
    entry: u32,
    /// Total constituent instructions (terminator included).
    len: u32,
    ops: Vec<MicroOp>,
    /// Multi-instruction micro-ops in `ops` (for [`TierStats::fused_ops`]).
    fused: u32,
    /// The raw code bytes the block was compiled from.
    code: Vec<u8>,
}

impl CompiledBlock {
    /// Whether `state` still holds the code bytes this block was compiled
    /// from.
    fn matches(&self, state: &StateVector) -> bool {
        let start = MEM_BASE + self.entry as usize;
        state.as_bytes().get(start..start + self.code.len()).is_some_and(|bytes| bytes == self.code)
    }

    /// One-past-the-end memory address of the block's code bytes.
    fn end(&self) -> u32 {
        self.entry + self.len * INSTRUCTION_BYTES
    }
}

/// Per-entry tier state: arrival count, a compiled block, or a region not
/// worth compiling (shorter than two instructions, e.g. an immediate
/// unsupported opcode).
#[derive(Debug, Clone)]
enum BlockSlot {
    Counting(u32),
    Compiled(Box<CompiledBlock>),
    Rejected,
}

/// The block currently executing (its `Box` is taken out of the slot so the
/// cache stays borrowable for store invalidation; its range entry stays
/// registered). A store overlapping `[start, end)` sets `invalidated`,
/// which both stops the execution at the current micro-op boundary and
/// drops the block instead of reinserting it.
#[derive(Debug, Clone)]
struct ActiveBlock {
    start: u32,
    end: u32,
    invalidated: bool,
}

/// The tier-1 execution cache: tier-0's [`DecodedCache`] plus hotness
/// counters, compiled blocks and their shared invalidation path.
///
/// `BlockCache` implements [`DecodeCache`] by containment: `cached` and
/// `remember` delegate to the inner decoded cache, while `invalidate`
/// clears *both* decoded slots and overlapping compiled blocks. Passing a
/// `BlockCache` to [`transition_cached`] therefore gives exactly tier-0
/// semantics — which is what [`run_segment`] does between blocks.
#[derive(Debug, Clone)]
pub struct BlockCache {
    decoded: DecodedCache,
    config: TierConfig,
    /// One slot per 8-byte-aligned instruction position (empty when the
    /// tier is disabled).
    blocks: Vec<BlockSlot>,
    /// `(start, end, slot index)` extents of every *resting* compiled block,
    /// scanned on store invalidation. Blocks are few (one per hot region),
    /// so the scan is cheaper than any per-byte index.
    ranges: Vec<(u32, u32, u32)>,
    active: Option<ActiveBlock>,
    stats: TierStats,
}

impl BlockCache {
    /// Creates a cache sized for `state`'s memory segment.
    pub fn new(state: &StateVector, config: TierConfig) -> Self {
        let slots = if config.enabled { state.mem_size() / INSTRUCTION_BYTES as usize } else { 0 };
        let mut blocks = Vec::new();
        blocks.resize_with(slots, || BlockSlot::Counting(0));
        BlockCache {
            decoded: DecodedCache::new(state),
            config,
            blocks,
            ranges: Vec::new(),
            active: None,
            stats: TierStats::default(),
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &TierConfig {
        &self.config
    }

    /// Whether tier-1 execution is enabled.
    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    /// A snapshot of the tier counters.
    pub fn stats(&self) -> TierStats {
        self.stats
    }

    /// Drains the tier counters, returning everything accumulated since the
    /// last drain. Long-lived workers call this per job to publish deltas.
    pub fn take_stats(&mut self) -> TierStats {
        std::mem::take(&mut self.stats)
    }

    /// Marks an entry address as already hot, so the region compiles on its
    /// first arrival. The runtime feeds the recognizer's hot IPs in here —
    /// the recognizer surfaces them for free.
    pub fn seed_hot(&mut self, ip: u32) {
        if !self.config.enabled || ip % INSTRUCTION_BYTES != 0 {
            return;
        }
        if let Some(BlockSlot::Counting(n)) = self.blocks.get_mut((ip / INSTRUCTION_BYTES) as usize)
        {
            *n = (*n).max(self.config.hot_threshold);
        }
    }

    /// Forgets every decoded slot, compiled block and hotness counter.
    /// The conservative reset behind `Machine::state_mut`, where arbitrary
    /// code bytes may have been rewritten.
    pub fn clear(&mut self) {
        debug_assert!(self.active.is_none(), "clear during block execution");
        self.decoded.clear();
        self.active = None;
        self.stats.blocks_invalidated += self.ranges.len() as u64;
        self.ranges.clear();
        for slot in &mut self.blocks {
            *slot = BlockSlot::Counting(0);
        }
    }

    /// Resets for a new job's state, reusing allocations: decoded slots are
    /// always cleared (same contract as [`DecodedCache::reset_for`]), but
    /// compiled blocks whose code-byte snapshot still matches the new state
    /// are kept — speculation workers run job after job of the *same*
    /// program, and recompiling every hot block per superstep would forfeit
    /// most of the tier's win. Hotness counters survive for the same
    /// reason; a stale counter can at worst trigger one compilation whose
    /// block is validated against the actual bytes anyway.
    pub fn reset_for(&mut self, state: &StateVector) {
        debug_assert!(self.active.is_none(), "reset during block execution");
        self.decoded.reset_for(state);
        self.active = None;
        let slots =
            if self.config.enabled { state.mem_size() / INSTRUCTION_BYTES as usize } else { 0 };
        if self.blocks.len() != slots {
            self.blocks.clear();
            self.blocks.resize_with(slots, || BlockSlot::Counting(0));
            self.ranges.clear();
            return;
        }
        let blocks = &mut self.blocks;
        let threshold = self.config.hot_threshold;
        self.ranges.retain(|&(_, _, slot)| {
            let keep = match &blocks[slot as usize] {
                BlockSlot::Compiled(block) => block.matches(state),
                _ => false,
            };
            if !keep {
                // Still hot — the region recompiles from the new bytes on
                // its next arrival.
                blocks[slot as usize] = BlockSlot::Counting(threshold);
            }
            keep
        });
    }

    /// Records a jump arrival at `ip`: bumps the hotness counter, compiles
    /// the region once hot, and hands out the compiled block (its `Box`
    /// taken from the slot and marked active; its range entry stays
    /// registered so store invalidation keeps seeing it) when one exists.
    fn arrive(&mut self, ip: u32, state: &StateVector) -> Option<Box<CompiledBlock>> {
        if ip % INSTRUCTION_BYTES != 0 {
            return None;
        }
        let index = (ip / INSTRUCTION_BYTES) as usize;
        let slot = self.blocks.get_mut(index)?;
        match slot {
            BlockSlot::Rejected => None,
            BlockSlot::Compiled(_) => {
                let taken = std::mem::replace(slot, BlockSlot::Counting(self.config.hot_threshold));
                let BlockSlot::Compiled(block) = taken else { unreachable!() };
                self.active =
                    Some(ActiveBlock { start: block.entry, end: block.end(), invalidated: false });
                Some(block)
            }
            BlockSlot::Counting(n) => {
                *n = n.saturating_add(1);
                if *n < self.config.hot_threshold.max(1) {
                    return None;
                }
                match compile_block(state, ip, self.config.max_block_len) {
                    Some(block) => {
                        self.stats.blocks_compiled += 1;
                        self.stats.fused_ops += block.fused as u64;
                        let end = block.end();
                        self.ranges.push((block.entry, end, index as u32));
                        self.active =
                            Some(ActiveBlock { start: block.entry, end, invalidated: false });
                        Some(Box::new(block))
                    }
                    None => {
                        *slot = BlockSlot::Rejected;
                        None
                    }
                }
            }
        }
    }

    /// Returns a block after execution: reinserted into its slot unless a
    /// store invalidated it mid-flight, in which case it is dropped (the
    /// invalidation already removed its range and reset the slot's hotness
    /// to zero, avoiding a compile/invalidate thrash on self-modifying
    /// loops).
    fn finish(&mut self, block: Box<CompiledBlock>, retired: u64) {
        self.stats.tier1_instructions += retired;
        let active = self.active.take().expect("finish without an active block");
        if !active.invalidated {
            let index = (block.entry / INSTRUCTION_BYTES) as usize;
            self.blocks[index] = BlockSlot::Compiled(block);
        }
    }

    /// Whether the currently executing block has been invalidated by one of
    /// its own stores.
    fn active_invalidated(&self) -> bool {
        self.active.as_ref().is_some_and(|active| active.invalidated)
    }

    /// Drops every compiled block overlapping the written byte range and
    /// flags the active block when it is hit. Shares the written-range
    /// geometry with the decoded-slot invalidation that already ran.
    fn invalidate_blocks(&mut self, addr: u32, len: u32) {
        if len == 0 || (self.ranges.is_empty() && self.active.is_none()) {
            return;
        }
        let end = addr.saturating_add(len);
        if let Some(active) = self.active.as_mut() {
            if !active.invalidated && addr < active.end && end > active.start {
                // Counted by the range sweep below — the active block's
                // range entry is still registered.
                active.invalidated = true;
            }
        }
        let blocks = &mut self.blocks;
        let stats = &mut self.stats;
        self.ranges.retain(|&(start, block_end, slot)| {
            let hit = addr < block_end && end > start;
            if hit {
                blocks[slot as usize] = BlockSlot::Counting(0);
                stats.blocks_invalidated += 1;
            }
            !hit
        });
    }
}

impl DecodeCache for BlockCache {
    #[inline]
    fn cached(&self, addr: u32) -> Option<Instruction> {
        self.decoded.cached(addr)
    }

    #[inline]
    fn remember(&mut self, addr: u32, instruction: Instruction) {
        self.decoded.remember(addr, instruction);
    }

    #[inline]
    fn invalidate(&mut self, addr: u32, len: u32) {
        // The single shared invalidation path: decoded slots and compiled
        // blocks go stale together or not at all.
        self.decoded.invalidate(addr, len);
        self.invalidate_blocks(addr, len);
    }
}

/// Why a [`run_segment`] call returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentExit {
    /// The IP equalled the stop address after a retired instruction.
    StopIp,
    /// The program executed `halt`.
    Halted,
    /// The instruction budget was exhausted.
    Budget,
    /// An instruction faulted. The retired count excludes the faulting
    /// instruction, and the state is exactly the interpreter's at-fault
    /// state (the faulting instruction performed zero writes).
    Fault(VmError),
}

/// Executes instructions until the IP equals `stop_ip` (checked after each
/// retired instruction), the program halts, an instruction faults, or
/// exactly `budget` instructions have retired. Returns the retired count
/// and the exit reason.
///
/// This is the tier-up driver: hot regions run as compiled blocks, cold
/// ones single-step through [`transition_cached`] with the `BlockCache` as
/// the decode cache. Hotness is consulted only at jump arrivals (and at
/// segment entry), so sequential fall-through execution pays nothing.
/// Results — final state, dependency footprint, retired counts — are
/// bit-identical to a pure tier-0 loop.
pub fn run_segment<D: DepSink>(
    state: &mut StateVector,
    deps: &mut D,
    cache: &mut BlockCache,
    stop_ip: u32,
    budget: u64,
) -> (u64, SegmentExit) {
    let mut retired: u64 = 0;
    // Entering the segment counts as an arrival: the runtime seeds the
    // recognized IP, which is exactly where every superstep starts.
    let mut arrival = true;
    while retired < budget {
        let ip = state.ip();
        if arrival {
            if let Some(block) = cache.arrive(ip, state) {
                let exit = execute_block(&block, state, deps, cache, stop_ip, budget - retired);
                cache.finish(block, exit.retired);
                retired += exit.retired;
                if let Some(error) = exit.fault {
                    return (retired, SegmentExit::Fault(error));
                }
                if exit.retired > 0 {
                    if state.ip() == stop_ip {
                        return (retired, SegmentExit::StopIp);
                    }
                    // A block exit is a region boundary whichever way the
                    // terminator went; stay in arrival mode.
                    continue;
                }
                // The first micro-op alone exceeded the remaining budget (a
                // fused pair straddling the boundary): fall through to one
                // tier-0 step so the segment always makes progress.
            }
        }
        match transition_cached(state, deps, cache) {
            Ok(StepOutcome::Continue) => {
                retired += 1;
                cache.stats.tier0_instructions += 1;
                let new_ip = state.ip();
                if new_ip == stop_ip {
                    return (retired, SegmentExit::StopIp);
                }
                arrival = new_ip != ip.wrapping_add(INSTRUCTION_BYTES);
            }
            Ok(StepOutcome::Halted) => return (retired, SegmentExit::Halted),
            Err(error) => return (retired, SegmentExit::Fault(error)),
        }
    }
    (retired, SegmentExit::Budget)
}

/// Result of one block execution: how many constituents retired, and the
/// fault if one stopped it. The IP has always been left exactly where the
/// interpreter would leave it.
struct BlockExit {
    retired: u64,
    fault: Option<VmError>,
}

/// Runs a compiled block's micro-ops with the threaded dispatch loop.
///
/// When the terminator jumps back to the block's own entry — the shape of
/// every hot loop — execution re-enters the block directly, without going
/// back through arrival bookkeeping, until the budget runs out, the stop IP
/// is reached, or a store invalidates the block. A micro-op that would
/// overrun the remaining budget (or an interior stop IP) is not started;
/// the caller single-steps across the boundary.
///
/// The IP is read once at entry and written once per block exit;
/// per-constituent fetch reads are recorded in strict fetch-then-execute
/// order, so the dependency footprint matches tier-0 byte for byte.
fn execute_block<D: DepSink>(
    block: &CompiledBlock,
    state: &mut StateVector,
    deps: &mut D,
    cache: &mut BlockCache,
    stop_ip: u32,
    budget: u64,
) -> BlockExit {
    let mut ctx = Ctx { state, deps, code: cache };
    // The interpreter reads the IP before every fetch; inside the block the
    // value is statically known, so one read at entry is FSM-equivalent
    // (later reads would all be reads-after-write).
    ctx.note_read(IP_OFFSET, 4);
    let entry = block.entry;
    // An interior stop IP caps every pass at the constituent whose
    // retirement lands the IP exactly on it.
    let delta = stop_ip.wrapping_sub(entry);
    let interior_stop = if delta % INSTRUCTION_BYTES == 0
        && (1..=block.len).contains(&(delta / INSTRUCTION_BYTES))
    {
        delta / INSTRUCTION_BYTES
    } else {
        u32::MAX
    };
    let mut retired: u64 = 0;
    'pass: loop {
        let limit = (budget - retired).min(block.len as u64).min(interior_stop as u64) as u32;
        // Constituents retired so far in this pass over the block.
        let mut pass: u32 = 0;
        for op in &block.ops {
            if pass + op.count as u32 > limit {
                break;
            }
            let addr = entry + op.first as u32 * INSTRUCTION_BYTES;
            match &op.kind {
                OpKind::One(lowered) => {
                    ctx.note_read(MEM_BASE + addr as usize, INSTRUCTION_BYTES as usize);
                    if let Err(error) = exec_lowered(&mut ctx, lowered, addr) {
                        return fault_exit(&mut ctx, entry, pass, retired, error);
                    }
                }
                OpKind::Pair(first, second) => {
                    ctx.note_read(MEM_BASE + addr as usize, INSTRUCTION_BYTES as usize);
                    if let Err(error) = exec_lowered(&mut ctx, first, addr) {
                        return fault_exit(&mut ctx, entry, pass, retired, error);
                    }
                    let next = addr + INSTRUCTION_BYTES;
                    ctx.note_read(MEM_BASE + next as usize, INSTRUCTION_BYTES as usize);
                    if let Err(error) = exec_lowered(&mut ctx, second, next) {
                        return fault_exit(&mut ctx, entry, pass + 1, retired, error);
                    }
                }
                OpKind::Jump { target } => {
                    ctx.note_read(MEM_BASE + addr as usize, INSTRUCTION_BYTES as usize);
                    ctx.write_ip(*target);
                    retired += (pass + 1) as u64;
                    if *target == entry
                        && *target != stop_ip
                        && retired < budget
                        && !ctx.code.active_invalidated()
                    {
                        continue 'pass;
                    }
                    return BlockExit { retired, fault: None };
                }
                OpKind::Branch { cmp, opcode, target } => {
                    let flags = match cmp {
                        Some((lhs_reg, rhs)) => {
                            ctx.note_read(MEM_BASE + addr as usize, INSTRUCTION_BYTES as usize);
                            let lhs = ctx.read_reg(*lhs_reg);
                            let rhs = match rhs {
                                CmpRhs::Reg(reg) => ctx.read_reg(*reg),
                                CmpRhs::Imm(imm) => *imm,
                            };
                            let flags = Flags::compare(lhs, rhs);
                            ctx.write_flags(flags);
                            let next = addr + INSTRUCTION_BYTES;
                            ctx.note_read(MEM_BASE + next as usize, INSTRUCTION_BYTES as usize);
                            // The compare just wrote the flags; using the
                            // value directly instead of the interpreter's
                            // read-back is FSM-equivalent
                            // (read-after-write).
                            flags
                        }
                        None => {
                            ctx.note_read(MEM_BASE + addr as usize, INSTRUCTION_BYTES as usize);
                            ctx.read_flags()
                        }
                    };
                    let next = if branch_taken(*opcode, flags) { *target } else { block.end() };
                    ctx.write_ip(next);
                    retired += (pass + op.count as u32) as u64;
                    if next == entry
                        && next != stop_ip
                        && retired < budget
                        && !ctx.code.active_invalidated()
                    {
                        continue 'pass;
                    }
                    return BlockExit { retired, fault: None };
                }
            }
            pass += op.count as u32;
            // A store may have invalidated this block: stop at the micro-op
            // boundary, exactly where the interpreter would next re-fetch
            // the modified bytes.
            if op.writes_mem && ctx.code.active_invalidated() {
                break;
            }
        }
        // Early stop or fall-off end: the next instruction is sequential.
        if pass > 0 {
            ctx.write_ip(entry + pass * INSTRUCTION_BYTES);
        }
        return BlockExit { retired: retired + pass as u64, fault: None };
    }
}

/// Exits a block on a faulting constituent. `completed` constituents fully
/// retired in the current pass before the fault (`retired` counts earlier
/// passes); the faulting one performed zero writes, and the IP points at it
/// (written by its predecessor — a prior constituent or the loop-back
/// terminator — or never touched when the very first constituent faults).
fn fault_exit<D: DepSink>(
    ctx: &mut Ctx<'_, D, BlockCache>,
    entry: u32,
    completed: u32,
    retired: u64,
    error: VmError,
) -> BlockExit {
    if completed > 0 {
        ctx.write_ip(entry + completed * INSTRUCTION_BYTES);
    }
    BlockExit { retired: retired + completed as u64, fault: Some(error) }
}

/// Straight-line instructions: everything except control flow and `halt`.
fn is_straight(opcode: Opcode) -> bool {
    use Opcode::*;
    !matches!(
        opcode,
        Halt | Jmp | Jeq | Jne | Jlt | Jle | Jgt | Jge | Jltu | Jgeu | JmpR | Call | Ret
    )
}

fn is_jcc(opcode: Opcode) -> bool {
    use Opcode::*;
    matches!(opcode, Jeq | Jne | Jlt | Jle | Jgt | Jge | Jltu | Jgeu)
}

/// Pure register-to-register work: fusible on either side of a pair.
fn is_reg_op(opcode: Opcode) -> bool {
    use Opcode::*;
    matches!(
        opcode,
        MovI | Mov
            | Neg
            | Not
            | Add
            | Sub
            | Mul
            | Div
            | Rem
            | And
            | Or
            | Xor
            | Shl
            | Shr
            | Sar
            | AddI
            | MulI
            | DivI
            | RemI
            | AndI
            | OrI
            | XorI
            | ShlI
            | ShrI
            | SarI
    )
}

/// Executes one pre-lowered constituent in the interpreter's operand-access
/// order.
#[inline(always)]
fn exec_lowered<D: DepSink>(
    ctx: &mut Ctx<'_, D, BlockCache>,
    op: &Lowered,
    addr: u32,
) -> VmResult<()> {
    match op {
        Lowered::MovImm { d, imm } => {
            ctx.write_reg(*d, *imm);
            Ok(())
        }
        Lowered::AluRR { op, d, a, b } => {
            let lhs = ctx.read_reg(*a);
            let rhs = ctx.read_reg(*b);
            ctx.write_reg(*d, alu_apply(*op, lhs, rhs));
            Ok(())
        }
        Lowered::AluRI { op, d, a, imm } => {
            let lhs = ctx.read_reg(*a);
            ctx.write_reg(*d, alu_apply(*op, lhs, *imm));
            Ok(())
        }
        Lowered::Generic(instruction) => exec_operate(ctx, instruction, addr),
    }
}

/// The ALU semantics shared with `exec_operate`'s `alu`, minus the
/// divide-by-zero path the lowered forms exclude.
#[inline(always)]
fn alu_apply(op: AluKind, lhs: u32, rhs: u32) -> u32 {
    match op {
        AluKind::Add => lhs.wrapping_add(rhs),
        AluKind::Sub => lhs.wrapping_sub(rhs),
        AluKind::Mul => lhs.wrapping_mul(rhs),
        AluKind::And => lhs & rhs,
        AluKind::Or => lhs | rhs,
        AluKind::Xor => lhs ^ rhs,
        AluKind::Shl => lhs.wrapping_shl(rhs & 31),
        AluKind::Shr => lhs.wrapping_shr(rhs & 31),
        AluKind::Sar => ((lhs as i32).wrapping_shr(rhs & 31)) as u32,
    }
}

/// Lowers a straight-line instruction at compile time: non-faulting ALU
/// forms get dedicated handlers, everything else stays generic.
fn lower(instruction: Instruction) -> Lowered {
    use Opcode::*;
    let kind = match instruction.opcode {
        MovI => {
            return Lowered::MovImm { d: instruction.a, imm: instruction.imm as u32 };
        }
        Add | AddI => AluKind::Add,
        Sub => AluKind::Sub,
        Mul | MulI => AluKind::Mul,
        And | AndI => AluKind::And,
        Or | OrI => AluKind::Or,
        Xor | XorI => AluKind::Xor,
        Shl | ShlI => AluKind::Shl,
        Shr | ShrI => AluKind::Shr,
        Sar | SarI => AluKind::Sar,
        _ => return Lowered::Generic(instruction),
    };
    match instruction.opcode {
        Add | Sub | Mul | And | Or | Xor | Shl | Shr | Sar => {
            Lowered::AluRR { op: kind, d: instruction.a, a: instruction.b, b: instruction.c }
        }
        _ => Lowered::AluRI {
            op: kind,
            d: instruction.a,
            a: instruction.b,
            imm: instruction.imm as u32,
        },
    }
}

/// Whether a straight-line instruction can write memory (and therefore
/// invalidate compiled code).
fn writes_memory(opcode: Opcode) -> bool {
    use Opcode::*;
    matches!(opcode, StW | StB | Push)
}

/// Whether two adjacent straight-line instructions fuse into one micro-op:
/// load/op, op/store, or op/op. A store never leads a pair (its write could
/// overwrite the trailing constituent's code bytes).
fn fusible(first: Opcode, second: Opcode) -> bool {
    use Opcode::*;
    let first_load = matches!(first, LdW | LdB);
    let second_store = matches!(second, StW | StB);
    (first_load && is_reg_op(second)) || (is_reg_op(first) && (second_store || is_reg_op(second)))
}

/// Compiles the straight-line region starting at `entry` into a block of
/// fused micro-ops. Returns `None` for regions shorter than two
/// instructions (nothing to win). Compilation reads the state directly —
/// *not* through a [`DepSink`] — because speculatively decoded bytes are
/// not dependencies; only retired constituents record their fetch at
/// execution time.
fn compile_block(state: &StateVector, entry: u32, max_block_len: usize) -> Option<CompiledBlock> {
    let max_len = max_block_len.min(u16::MAX as usize).max(2);
    let mut straight: Vec<Instruction> = Vec::new();
    let mut terminator: Option<Instruction> = None;
    let mut addr = entry;
    while straight.len() < max_len {
        let Ok(index) = state.mem_index(addr, INSTRUCTION_BYTES) else { break };
        let mut bytes = [0u8; INSTRUCTION_BYTES as usize];
        bytes.copy_from_slice(&state.as_bytes()[index..index + INSTRUCTION_BYTES as usize]);
        let Ok(instruction) = crate::encode::decode(&bytes, addr) else { break };
        if is_straight(instruction.opcode) {
            straight.push(instruction);
            addr += INSTRUCTION_BYTES;
            continue;
        }
        if matches!(instruction.opcode, Opcode::Jmp) || is_jcc(instruction.opcode) {
            terminator = Some(instruction);
        }
        // halt/jmpr/call/ret end the region unsupported: tier-0 handles them.
        break;
    }
    let len = straight.len() as u32 + u32::from(terminator.is_some());
    if len < 2 {
        return None;
    }

    let mut ops: Vec<MicroOp> = Vec::new();
    let mut fused = 0u32;
    // Reserve a trailing cmp/cmpi for fusion with a conditional terminator.
    let fuse_cmp = matches!(terminator, Some(t) if is_jcc(t.opcode))
        && matches!(straight.last(), Some(l) if matches!(l.opcode, Opcode::Cmp | Opcode::CmpI));
    let straight_end = straight.len() - usize::from(fuse_cmp);
    let mut i = 0usize;
    while i < straight_end {
        let first = straight[i];
        let (kind, writes_mem) = match straight.get(i + 1).filter(|_| i + 1 < straight_end) {
            Some(&second) if fusible(first.opcode, second.opcode) => {
                fused += 1;
                let writes = writes_memory(first.opcode) || writes_memory(second.opcode);
                (OpKind::Pair(lower(first), lower(second)), writes)
            }
            _ => (OpKind::One(lower(first)), writes_memory(first.opcode)),
        };
        let count = match kind {
            OpKind::Pair(..) => 2u16,
            _ => 1u16,
        };
        ops.push(MicroOp { kind, first: i as u16, count, writes_mem });
        i += count as usize;
    }
    if let Some(t) = terminator {
        if is_jcc(t.opcode) {
            let cmp = fuse_cmp.then(|| {
                let compare = straight[straight_end];
                let rhs = match compare.opcode {
                    Opcode::CmpI => CmpRhs::Imm(compare.imm as u32),
                    _ => CmpRhs::Reg(compare.b),
                };
                (compare.a, rhs)
            });
            if fuse_cmp {
                fused += 1;
            }
            ops.push(MicroOp {
                kind: OpKind::Branch { cmp, opcode: t.opcode, target: t.imm as u32 },
                first: straight_end as u16,
                count: 1 + u16::from(fuse_cmp),
                writes_mem: false,
            });
        } else {
            ops.push(MicroOp {
                kind: OpKind::Jump { target: t.imm as u32 },
                first: straight.len() as u16,
                count: 1,
                writes_mem: false,
            });
        }
    }

    let start = MEM_BASE + entry as usize;
    let code = state.as_bytes()[start..start + (len * INSTRUCTION_BYTES) as usize].to_vec();
    Some(CompiledBlock { entry, len, ops, fused, code })
}

/// Runs `state` to completion (or `budget`) under the tiered driver and a
/// throwaway stop IP no program reaches. Convenience for tests and
/// benchmarks.
///
/// # Errors
/// Propagates the fault when execution faults.
pub fn run_tiered_to_halt(
    state: &mut StateVector,
    cache: &mut BlockCache,
    budget: u64,
) -> VmResult<u64> {
    let (retired, exit) = run_segment(state, &mut crate::exec::NoDeps, cache, u32::MAX, budget);
    match exit {
        SegmentExit::Halted => Ok(retired),
        SegmentExit::Budget => Err(VmError::InstructionBudgetExceeded { budget }),
        SegmentExit::Fault(error) => Err(error),
        SegmentExit::StopIp => unreachable!("stop IP is unreachable"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deps::DepVector;
    use crate::encode::{encode, encode_all};
    use crate::exec::{transition, NoDeps};
    use crate::isa::{Instruction as I, Reg, SP};

    fn r(i: u8) -> Reg {
        Reg::new(i).unwrap()
    }

    fn machine_with(program: &[I], mem: usize) -> StateVector {
        let mut state = StateVector::new(mem).unwrap();
        state.write_mem(0, &encode_all(program)).unwrap();
        state.set_reg(SP, mem as u32);
        state
    }

    fn eager() -> TierConfig {
        TierConfig { enabled: true, hot_threshold: 1, max_block_len: 64 }
    }

    /// The down-counting loop used across the repo's tests and benches.
    fn counting_loop(iterations: i32) -> Vec<I> {
        vec![
            I::ri(Opcode::MovI, r(1), iterations),
            I::ri(Opcode::MovI, r(2), 0),
            I::rrr(Opcode::Add, r(2), r(2), r(1)), // addr 16 (loop head)
            I::rri(Opcode::AddI, r(1), r(1), -1),
            I::ri(Opcode::CmpI, r(1), 0),
            I::i(Opcode::Jne, 16),
            I::bare(Opcode::Halt),
        ]
    }

    /// Runs `program` to halt twice — pure tier-0 and tiered with an eager
    /// threshold — and asserts identical final states and retired counts.
    fn assert_tiered_execution_matches(program: &[I], mem: usize, budget: u64) {
        let mut plain = machine_with(program, mem);
        let mut tiered = machine_with(program, mem);
        let mut plain_retired = 0u64;
        for _ in 0..budget {
            match transition(&mut plain, None).unwrap() {
                StepOutcome::Continue => plain_retired += 1,
                StepOutcome::Halted => break,
            }
        }
        let mut cache = BlockCache::new(&tiered, eager());
        let tiered_retired = run_tiered_to_halt(&mut tiered, &mut cache, budget).unwrap();
        assert_eq!(plain, tiered);
        assert_eq!(plain_retired, tiered_retired);
        assert!(cache.stats().blocks_compiled > 0, "tier never engaged: {:?}", cache.stats());
    }

    #[test]
    fn tiered_loop_matches_interpreter() {
        assert_tiered_execution_matches(&counting_loop(100), 512, 10_000);
    }

    #[test]
    fn tiered_calls_loads_stores_match_interpreter() {
        // Mixes supported blocks with unsupported call/ret/push/pop fallback
        // and memory traffic.
        let program = [
            I::ri(Opcode::MovI, r(1), 8),          // 0: loop counter
            I::ri(Opcode::MovI, r(3), 256),        // 8: buffer base
            I::i(Opcode::Call, 7 * 8),             // 16: call body
            I::rri(Opcode::AddI, r(1), r(1), -1),  // 24
            I::ri(Opcode::CmpI, r(1), 0),          // 32
            I::i(Opcode::Jne, 16),                 // 40
            I::bare(Opcode::Halt),                 // 48
            I::r(Opcode::Push, r(1)),              // 56: body
            I::rri(Opcode::StW, r(3), r(1), 0),    // 64
            I::rri(Opcode::LdW, r(4), r(3), 0),    // 72
            I::rrr(Opcode::Add, r(5), r(5), r(4)), // 80
            I::r(Opcode::Pop, r(1)),               // 88
            I::bare(Opcode::Ret),                  // 96
        ];
        assert_tiered_execution_matches(&program, 1024, 10_000);
    }

    #[test]
    fn self_modifying_store_invalidates_compiled_block() {
        // The exec.rs regression program, re-run under the tier: the hot
        // region at 24 is patched by stores at 48/56, so the compiled block
        // covering it must be invalidated mid-run or the rerun at 24 would
        // retire stale micro-ops.
        let movi_r2_99 = encode(&I::ri(Opcode::MovI, r(2), 99));
        let lo = i32::from_le_bytes([movi_r2_99[0], movi_r2_99[1], movi_r2_99[2], movi_r2_99[3]]);
        let hi = i32::from_le_bytes([movi_r2_99[4], movi_r2_99[5], movi_r2_99[6], movi_r2_99[7]]);
        let program = [
            I::ri(Opcode::MovI, r(5), 24),      // 0: target address
            I::ri(Opcode::MovI, r(6), lo),      // 8
            I::ri(Opcode::MovI, r(7), hi),      // 16
            I::ri(Opcode::MovI, r(2), 1),       // 24: will be overwritten
            I::ri(Opcode::CmpI, r(2), 99),      // 32
            I::i(Opcode::Jeq, 9 * 8),           // 40: halt once patched
            I::rri(Opcode::StW, r(5), r(6), 0), // 48: patch low word
            I::rri(Opcode::StW, r(5), r(7), 4), // 56: patch high word
            I::i(Opcode::Jmp, 24),              // 64: rerun patched instr
            I::bare(Opcode::Halt),              // 72
        ];
        let mut plain = machine_with(&program, 512);
        let mut tiered = machine_with(&program, 512);
        let mut plain_retired = 0u64;
        for _ in 0..1000 {
            match transition(&mut plain, None).unwrap() {
                StepOutcome::Continue => plain_retired += 1,
                StepOutcome::Halted => break,
            }
        }
        let mut cache = BlockCache::new(&tiered, eager());
        let tiered_retired = run_tiered_to_halt(&mut tiered, &mut cache, 1000).unwrap();
        assert_eq!(plain, tiered);
        assert_eq!(plain_retired, tiered_retired);
        let stats = cache.stats();
        assert!(stats.blocks_compiled > 0, "{stats:?}");
        assert!(stats.blocks_invalidated > 0, "the patching stores must invalidate: {stats:?}");
    }

    #[test]
    fn store_into_own_block_stops_at_micro_op_boundary() {
        // A block that rewrites one of its *later* constituents before
        // reaching it: instruction at 8 patches the slot at 24 (inside the
        // same straight-line region) to `movi r4, 7`. The executing block
        // must stop at the store's boundary and tier-0 must pick up the
        // freshly written bytes.
        let movi_r4_7 = encode(&I::ri(Opcode::MovI, r(4), 7));
        let lo = i32::from_le_bytes([movi_r4_7[0], movi_r4_7[1], movi_r4_7[2], movi_r4_7[3]]);
        let hi = i32::from_le_bytes([movi_r4_7[4], movi_r4_7[5], movi_r4_7[6], movi_r4_7[7]]);
        let program = [
            I::ri(Opcode::MovI, r(5), 32),      // 0: target address
            I::ri(Opcode::MovI, r(6), lo),      // 8
            I::ri(Opcode::MovI, r(7), hi),      // 16
            I::rri(Opcode::StW, r(5), r(6), 0), // 24: patch low word of 32
            I::rri(Opcode::StW, r(5), r(7), 4), // 32: patches itself! (hi word)
            I::bare(Opcode::Halt),              // 40 (becomes movi r4, 7? no:
                                                // 32 is overwritten; see below)
        ];
        // Run a loop entering at 0 repeatedly is unnecessary: the entry at 0
        // is compiled eagerly and spans the stores.
        let mut plain = machine_with(&program, 512);
        let mut tiered = machine_with(&program, 512);
        let mut plain_retired = 0u64;
        for _ in 0..1000 {
            match transition(&mut plain, None).unwrap() {
                StepOutcome::Continue => plain_retired += 1,
                StepOutcome::Halted => break,
            }
        }
        let mut cache = BlockCache::new(&tiered, eager());
        let tiered_retired = run_tiered_to_halt(&mut tiered, &mut cache, 1000).unwrap();
        assert_eq!(plain, tiered);
        assert_eq!(plain_retired, tiered_retired);
        assert!(cache.stats().blocks_invalidated > 0, "{:?}", cache.stats());
    }

    #[test]
    fn dependency_footprint_matches_interpreter() {
        let program = [
            I::ri(Opcode::MovI, r(1), 100),
            I::ri(Opcode::MovI, r(3), 4),       // loop counter
            I::rri(Opcode::LdW, r(2), r(1), 0), // 16: loop head; load
            I::rri(Opcode::AddI, r(2), r(2), 3),
            I::rri(Opcode::StW, r(1), r(2), 64), // store away from code
            I::rri(Opcode::AddI, r(3), r(3), -1),
            I::ri(Opcode::CmpI, r(3), 0),
            I::i(Opcode::Jne, 16),
            I::bare(Opcode::Halt),
        ];
        let mut plain = machine_with(&program, 512);
        let mut tiered = machine_with(&program, 512);
        plain.store_word(100, 7).unwrap();
        tiered.store_word(100, 7).unwrap();
        let mut deps_plain = DepVector::new(plain.len_bytes());
        let mut deps_tiered = DepVector::new(tiered.len_bytes());
        loop {
            if transition(&mut plain, Some(&mut deps_plain)).unwrap() == StepOutcome::Halted {
                break;
            }
        }
        let mut cache = BlockCache::new(&tiered, eager());
        let (_, exit) = run_segment(&mut tiered, &mut deps_tiered, &mut cache, u32::MAX, 1000);
        match exit {
            SegmentExit::Halted => {}
            SegmentExit::Budget | SegmentExit::StopIp => panic!("unexpected exit"),
            SegmentExit::Fault(error) => panic!("fault: {error}"),
        }
        assert_eq!(plain, tiered);
        // The whole point: identical read/write sets mean cache entries
        // built from tier-1 supersteps match tier-0's bit for bit.
        assert_eq!(deps_plain, deps_tiered);
        assert!(cache.stats().tier1_instructions > 0, "{:?}", cache.stats());
        assert!(cache.stats().fused_ops > 0, "{:?}", cache.stats());
    }

    #[test]
    fn budget_stops_exactly_mid_block() {
        let program = counting_loop(50);
        for budget in 1..40u64 {
            let mut plain = machine_with(&program, 512);
            let mut tiered = machine_with(&program, 512);
            let mut plain_retired = 0u64;
            for _ in 0..budget {
                match transition(&mut plain, None).unwrap() {
                    StepOutcome::Continue => plain_retired += 1,
                    StepOutcome::Halted => break,
                }
            }
            let mut cache = BlockCache::new(&tiered, eager());
            let (retired, exit) =
                run_segment(&mut tiered, &mut NoDeps, &mut cache, u32::MAX, budget);
            assert_eq!(exit, SegmentExit::Budget, "budget {budget}");
            assert_eq!(retired, plain_retired, "budget {budget}");
            assert_eq!(plain, tiered, "budget {budget}");
        }
    }

    #[test]
    fn interior_stop_ip_is_exact() {
        // Stop at every address inside the hot loop; retired counts and
        // states must match a tier-0 run_until_ip-style loop.
        let program = counting_loop(50);
        for stop in [16u32, 24, 32, 40] {
            let mut plain = machine_with(&program, 512);
            let mut tiered = machine_with(&program, 512);
            let mut cache = BlockCache::new(&tiered, eager());
            // Cross several occurrences so the block is hot and the stop
            // lands both at the entry and mid-block.
            for occurrence in 0..20 {
                let mut plain_retired = 0u64;
                loop {
                    assert_eq!(transition(&mut plain, None).unwrap(), StepOutcome::Continue);
                    plain_retired += 1;
                    if plain.ip() == stop {
                        break;
                    }
                }
                let (retired, exit) =
                    run_segment(&mut tiered, &mut NoDeps, &mut cache, stop, 10_000);
                assert_eq!(exit, SegmentExit::StopIp, "stop {stop} occurrence {occurrence}");
                assert_eq!(retired, plain_retired, "stop {stop} occurrence {occurrence}");
                assert_eq!(plain, tiered, "stop {stop} occurrence {occurrence}");
            }
            assert!(cache.stats().tier1_instructions > 0, "{:?}", cache.stats());
        }
    }

    #[test]
    fn fault_mid_block_reports_exact_count_and_state() {
        // r1 counts down 5..0; dividing by it faults on the sixth pass —
        // inside a compiled, fused block.
        let program = [
            I::ri(Opcode::MovI, r(1), 5),
            I::ri(Opcode::MovI, r(2), 100),
            I::rrr(Opcode::Div, r(3), r(2), r(1)), // 16: loop head; faults when r1 == 0
            I::rri(Opcode::AddI, r(1), r(1), -1),
            I::ri(Opcode::CmpI, r(1), -1),
            I::i(Opcode::Jne, 16),
            I::bare(Opcode::Halt),
        ];
        let mut plain = machine_with(&program, 512);
        let mut tiered = machine_with(&program, 512);
        let mut plain_retired = 0u64;
        let plain_error = loop {
            match transition(&mut plain, None) {
                Ok(StepOutcome::Continue) => plain_retired += 1,
                Ok(StepOutcome::Halted) => panic!("program should fault"),
                Err(error) => break error,
            }
        };
        let mut cache = BlockCache::new(&tiered, eager());
        let (retired, exit) = run_segment(&mut tiered, &mut NoDeps, &mut cache, u32::MAX, 10_000);
        let SegmentExit::Fault(tiered_error) = exit else { panic!("expected fault, got {exit:?}") };
        assert_eq!(tiered_error, plain_error);
        assert_eq!(retired, plain_retired);
        assert_eq!(plain, tiered, "at-fault states must match (IP, registers, flags)");
        assert!(cache.stats().tier1_instructions > 0, "{:?}", cache.stats());
    }

    #[test]
    fn seed_hot_compiles_on_first_arrival() {
        let program = counting_loop(50);
        let mut state = machine_with(&program, 512);
        let mut cache = BlockCache::new(&state, TierConfig { hot_threshold: 1_000_000, ..eager() });
        cache.seed_hot(16);
        let retired = run_tiered_to_halt(&mut state, &mut cache, 10_000).unwrap();
        assert_eq!(retired, 2 + 4 * 50);
        let stats = cache.stats();
        assert_eq!(stats.blocks_compiled, 1, "{stats:?}");
        assert!(stats.tier1_instructions > stats.tier0_instructions, "{stats:?}");
    }

    #[test]
    fn disabled_tier_never_compiles() {
        let program = counting_loop(50);
        let mut state = machine_with(&program, 512);
        let mut cache = BlockCache::new(&state, TierConfig::disabled());
        cache.seed_hot(16);
        let retired = run_tiered_to_halt(&mut state, &mut cache, 10_000).unwrap();
        assert_eq!(retired, 2 + 4 * 50);
        let stats = cache.stats();
        assert_eq!(stats.blocks_compiled, 0);
        assert_eq!(stats.tier1_instructions, 0);
        let mut plain = machine_with(&program, 512);
        while transition(&mut plain, None).unwrap() == StepOutcome::Continue {}
        assert_eq!(plain, state);
    }

    #[test]
    fn reset_for_keeps_matching_blocks_and_drops_stale_ones() {
        let program = counting_loop(50);
        let mut state = machine_with(&program, 512);
        let mut cache = BlockCache::new(&state, eager());
        run_tiered_to_halt(&mut state, &mut cache, 10_000).unwrap();
        let compiled = cache.stats().blocks_compiled;
        assert!(compiled > 0);

        // Same program, fresh state: blocks survive the reset and execution
        // reuses them without recompiling.
        let mut again = machine_with(&program, 512);
        cache.reset_for(&again);
        run_tiered_to_halt(&mut again, &mut cache, 10_000).unwrap();
        assert_eq!(cache.stats().blocks_compiled, compiled, "no recompilation expected");

        // Different code bytes at the same addresses: stale blocks must go.
        let other = machine_with(&counting_loop(7), 512);
        let mut other_state = {
            let mut s = other.clone();
            s.store_word(200, 1).unwrap(); // also differ in data, harmless
            s
        };
        // Rewrite the loop body so the snapshot mismatches.
        let patched = encode(&I::rrr(Opcode::Sub, r(2), r(2), r(1)));
        other_state.write_mem(16, &patched).unwrap();
        cache.reset_for(&other_state);
        let mut plain = other_state.clone();
        while transition(&mut plain, None).unwrap() == StepOutcome::Continue {}
        run_tiered_to_halt(&mut other_state, &mut cache, 10_000).unwrap();
        assert_eq!(plain, other_state);
        assert!(cache.stats().blocks_compiled > compiled, "stale block must recompile");
    }

    #[test]
    fn fused_chain_heavy_kernel_matches_interpreter() {
        // Long runs of fusible arithmetic with an interleaved load/store —
        // the shape the pair fusion targets.
        let program = [
            I::ri(Opcode::MovI, r(1), 64),
            I::ri(Opcode::MovI, r(2), 1),
            I::ri(Opcode::MovI, r(3), 256),
            I::rri(Opcode::MulI, r(2), r(2), 3), // 24: loop head
            I::rri(Opcode::AddI, r(2), r(2), 1),
            I::rri(Opcode::XorI, r(2), r(2), 0x55),
            I::rrr(Opcode::Add, r(4), r(2), r(1)),
            I::rri(Opcode::StW, r(3), r(4), 0),
            I::rri(Opcode::LdW, r(5), r(3), 0),
            I::rrr(Opcode::Add, r(6), r(6), r(5)),
            I::rri(Opcode::AddI, r(1), r(1), -1),
            I::ri(Opcode::CmpI, r(1), 0),
            I::i(Opcode::Jne, 24),
            I::bare(Opcode::Halt),
        ];
        assert_tiered_execution_matches(&program, 1024, 100_000);
    }

    #[test]
    fn block_cache_as_decode_cache_matches_decoded_cache() {
        // transition_cached over a BlockCache (tier idle) behaves exactly
        // like over a DecodedCache, including store invalidation.
        let program = counting_loop(20);
        let mut a = machine_with(&program, 512);
        let mut b = machine_with(&program, 512);
        let mut decoded = DecodedCache::new(&a);
        let mut blockcache = BlockCache::new(&b, TierConfig::default());
        loop {
            let x = transition_cached(&mut a, &mut NoDeps, &mut decoded).unwrap();
            let y = transition_cached(&mut b, &mut NoDeps, &mut blockcache).unwrap();
            assert_eq!(x, y);
            if x == StepOutcome::Halted {
                break;
            }
        }
        assert_eq!(a, b);
    }

    #[test]
    fn single_instruction_regions_are_rejected() {
        // `jmp spin` is a one-instruction region: compiling it wins nothing.
        let program = [I::i(Opcode::Jmp, 0)];
        let mut state = machine_with(&program, 128);
        let mut cache = BlockCache::new(&state, eager());
        let (retired, exit) = run_segment(&mut state, &mut NoDeps, &mut cache, u32::MAX, 100);
        assert_eq!(exit, SegmentExit::Budget);
        assert_eq!(retired, 100);
        assert_eq!(cache.stats().blocks_compiled, 0);
        assert_eq!(cache.stats().tier0_instructions, 100);
    }
}
