//! Sparse state representations and binary deltas.
//!
//! Cache entries in ASC are "compressed pairs of start and end states": only
//! the bytes in the read set (start) and write set (end) are stored, as a
//! sorted sparse list of `(index, value)` pairs ([`SparseBytes`]). Queries to
//! the distributed cache are additionally compressed as a binary difference
//! against the previous query ([`Delta`]); the paper uses the Myers
//! difference algorithm, and this module provides an equivalent run-based
//! byte-delta codec whose encoded size feeds the "cache query size" row of
//! Table 1.

use crate::state::StateVector;

/// FNV-1a over a byte stream: a cheap, deterministic 64-bit hash used for
/// cache sharding and duplicate-work detection across the workspace.
pub fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in bytes {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// A sparse, sorted set of `(byte index, value)` pairs drawn from a state
/// vector.
///
/// # Examples
/// ```
/// use asc_tvm::delta::SparseBytes;
/// use asc_tvm::state::StateVector;
/// let mut s = StateVector::new(64).unwrap();
/// s.set_byte(10, 7);
/// let sparse = SparseBytes::capture(&s, [10usize, 20usize]);
/// assert!(sparse.matches(&s));
/// let mut other = s.clone();
/// other.set_byte(10, 8);
/// assert!(!sparse.matches(&other));
/// ```
#[derive(Debug, PartialEq, Eq, Hash, Default)]
pub struct SparseBytes {
    entries: Vec<(u32, u8)>,
}

impl Clone for SparseBytes {
    fn clone(&self) -> Self {
        SparseBytes { entries: self.entries.clone() }
    }

    /// Reuses the destination's allocation — the trajectory cache's lookup
    /// scratch clones the winning entry into a long-lived buffer on the
    /// runtime's hot loop, which must not allocate per occurrence.
    fn clone_from(&mut self, source: &Self) {
        self.entries.clone_from(&source.entries);
    }
}

impl SparseBytes {
    /// Captures the values of `indices` from `state`.
    ///
    /// Indices are deduplicated and stored sorted.
    pub fn capture(state: &StateVector, indices: impl IntoIterator<Item = usize>) -> Self {
        let mut entries: Vec<(u32, u8)> =
            indices.into_iter().map(|i| (i as u32, state.byte(i))).collect();
        entries.sort_unstable_by_key(|(i, _)| *i);
        entries.dedup_by_key(|(i, _)| *i);
        SparseBytes { entries }
    }

    /// Builds a sparse set directly from `(index, value)` pairs.
    pub fn from_pairs(mut pairs: Vec<(u32, u8)>) -> Self {
        pairs.sort_unstable_by_key(|(i, _)| *i);
        pairs.dedup_by_key(|(i, _)| *i);
        SparseBytes { entries: pairs }
    }

    /// Number of bytes captured.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the `(index, value)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u8)> + '_ {
        self.entries.iter().copied()
    }

    /// Whether `state` agrees with every captured byte.
    ///
    /// Indices beyond the end of `state` never match.
    pub fn matches(&self, state: &StateVector) -> bool {
        self.entries
            .iter()
            .all(|&(i, v)| (i as usize) < state.len_bytes() && state.byte(i as usize) == v)
    }

    /// Number of captured bytes that disagree with `state`.
    pub fn mismatches(&self, state: &StateVector) -> usize {
        self.entries
            .iter()
            .filter(|&&(i, v)| (i as usize) >= state.len_bytes() || state.byte(i as usize) != v)
            .count()
    }

    /// Writes every captured byte into `state` (the cache "fast-forward").
    ///
    /// Indices beyond the end of `state` are ignored; in practice all
    /// captures come from states of the same machine.
    pub fn apply(&self, state: &mut StateVector) {
        for &(i, v) in &self.entries {
            if (i as usize) < state.len_bytes() {
                state.set_byte(i as usize, v);
            }
        }
    }

    /// Iterates over the byte positions (indices) in sorted order.
    pub fn positions(&self) -> impl Iterator<Item = u32> + '_ {
        self.entries.iter().map(|&(i, _)| i)
    }

    /// A stable 64-bit hash of the byte *positions* only: every sparse set
    /// with the same dependency shape (the same read-set byte indices,
    /// whatever their values) shares this hash. One half of
    /// [`fingerprint`](SparseBytes::fingerprint).
    pub fn position_hash(&self) -> u64 {
        fnv1a(self.entries.iter().flat_map(|&(i, _)| i.to_le_bytes()))
    }

    /// A stable 64-bit hash of the byte *values* only, taken in position
    /// order. Two sparse sets with identical positions match the same states
    /// iff their value hashes agree (modulo 64-bit collisions, which callers
    /// must guard with a full [`matches`](SparseBytes::matches)); a state's
    /// bytes at those positions hash to the same value via
    /// [`StateVector::hash_values_at`]. The other half of
    /// [`fingerprint`](SparseBytes::fingerprint).
    pub fn value_hash(&self) -> u64 {
        fnv1a(self.entries.iter().map(|&(_, v)| v))
    }

    /// A stable 64-bit hash of the contents, used as a cheap cache index key.
    /// Combines the position and value halves so that sets differing in
    /// either indices or values fingerprint differently.
    pub fn fingerprint(&self) -> u64 {
        self.position_hash().rotate_left(32) ^ self.value_hash()
    }

    /// Size in bits of the serialized sparse representation (5 bytes per
    /// entry: a 32-bit index plus the value). This is what Table 1 reports as
    /// the cache query size.
    pub fn encoded_bits(&self) -> usize {
        self.entries.len() * (4 + 1) * 8
    }

    /// Flips one bit of the `index`-th captured *value* (both `index` and
    /// `bit` wrap), leaving the positions — and therefore the sort order —
    /// untouched. No-op on an empty set.
    ///
    /// This models payload corruption (a flipped bit in a stored or
    /// transmitted cache entry) for the fault-injection harness and for
    /// integrity-checksum tests; it has no role in normal execution.
    pub fn flip_value_bit(&mut self, index: usize, bit: u32) {
        if self.entries.is_empty() {
            return;
        }
        let slot = index % self.entries.len();
        self.entries[slot].1 ^= 1u8 << (bit % 8);
    }

    /// Appends the wire encoding to `buf`: a `u32` pair count followed by a
    /// `u32` index and a `u8` value per pair, all little-endian, in index
    /// order. The byte-level half of the remote cache tier's codec; the
    /// frame header, versioning and integrity checks live on top of it in
    /// `asc_core::remote`.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for &(index, value) in &self.entries {
            buf.extend_from_slice(&index.to_le_bytes());
            buf.push(value);
        }
    }

    /// Exact size in bytes [`encode_into`](SparseBytes::encode_into) appends.
    pub fn encoded_len(&self) -> usize {
        4 + self.entries.len() * 5
    }

    /// Decodes one wire-encoded sparse set from the front of `bytes`,
    /// returning the set and the number of bytes consumed. `None` when the
    /// input is truncated or the pair count overruns it — a malformed
    /// message must never turn into a partial set. Pairs are re-sorted and
    /// deduplicated on the way in, so a decoded set upholds the same
    /// invariants as a captured one.
    pub fn decode_from(bytes: &[u8]) -> Option<(SparseBytes, usize)> {
        let count_bytes: [u8; 4] = bytes.get(..4)?.try_into().ok()?;
        let count = u32::from_le_bytes(count_bytes) as usize;
        let len = 4 + count.checked_mul(5)?;
        let body = bytes.get(4..len)?;
        let pairs = body
            .chunks_exact(5)
            .map(|chunk| {
                (u32::from_le_bytes(chunk[..4].try_into().expect("chunk is 5 bytes")), chunk[4])
            })
            .collect();
        Some((SparseBytes::from_pairs(pairs), len))
    }
}

impl FromIterator<(u32, u8)> for SparseBytes {
    fn from_iter<T: IntoIterator<Item = (u32, u8)>>(iter: T) -> Self {
        SparseBytes::from_pairs(iter.into_iter().collect())
    }
}

/// The *shape* of a sparse capture: its sorted byte positions, without the
/// values, plus their hash. Every [`SparseBytes`] whose dependencies touch
/// the same bytes shares one schema — most programs produce only a handful
/// of distinct schemas per recognized IP, which is what makes the trajectory
/// cache's grouped value-hash index effective: a query hashes the live
/// state's bytes at each schema's positions once
/// ([`hash_values_of`](PositionSchema::hash_values_of)) and compares against
/// stored [`value_hash`](SparseBytes::value_hash)es instead of matching
/// every entry byte-by-byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PositionSchema {
    positions: Box<[u32]>,
    hash: u64,
}

impl PositionSchema {
    /// The schema of a sparse capture (its positions, values dropped).
    pub fn of(sparse: &SparseBytes) -> Self {
        let positions: Box<[u32]> = sparse.positions().collect();
        PositionSchema { hash: sparse.position_hash(), positions }
    }

    /// The sorted byte positions.
    pub fn positions(&self) -> &[u32] {
        &self.positions
    }

    /// The schema's hash, equal to [`SparseBytes::position_hash`] of any
    /// capture with these positions.
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// Number of positions in the schema.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the schema has no positions (an empty read set, which every
    /// state satisfies).
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Whether `sparse` has exactly these positions.
    pub fn describes(&self, sparse: &SparseBytes) -> bool {
        sparse.len() == self.positions.len()
            && sparse.positions().zip(self.positions.iter()).all(|(a, &b)| a == b)
    }

    /// Hashes `state`'s bytes at the schema's positions, in order — equal to
    /// the [`value_hash`](SparseBytes::value_hash) of any capture with these
    /// positions whose values `state` agrees with. Returns `None` when a
    /// position lies beyond the end of `state` (no capture with this schema
    /// can match such a state).
    pub fn hash_values_of(&self, state: &StateVector) -> Option<u64> {
        state.hash_values_at(&self.positions)
    }

    /// Appends the wire encoding to `buf`: a `u32` position count followed
    /// by the sorted `u32` positions, little-endian. The hash is derived, so
    /// it never travels — a receiver recomputes it and two ends can never
    /// disagree about what a schema hashes to.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&(self.positions.len() as u32).to_le_bytes());
        for &position in self.positions.iter() {
            buf.extend_from_slice(&position.to_le_bytes());
        }
    }

    /// Decodes one wire-encoded schema from the front of `bytes`, returning
    /// the schema and the bytes consumed; `None` on truncated input or
    /// unsorted/duplicated positions (a valid schema is strictly sorted, and
    /// accepting anything else would let two ends disagree on its hash).
    pub fn decode_from(bytes: &[u8]) -> Option<(PositionSchema, usize)> {
        let count_bytes: [u8; 4] = bytes.get(..4)?.try_into().ok()?;
        let count = u32::from_le_bytes(count_bytes) as usize;
        let len = 4 + count.checked_mul(4)?;
        let body = bytes.get(4..len)?;
        let positions: Box<[u32]> = body
            .chunks_exact(4)
            .map(|chunk| u32::from_le_bytes(chunk.try_into().expect("chunk is 4 bytes")))
            .collect();
        if positions.windows(2).any(|pair| pair[0] >= pair[1]) {
            return None;
        }
        let hash = fnv1a(positions.iter().flat_map(|&p| p.to_le_bytes()));
        Some((PositionSchema { positions, hash }, len))
    }
}

impl From<&SparseBytes> for PositionSchema {
    fn from(sparse: &SparseBytes) -> Self {
        PositionSchema::of(sparse)
    }
}

impl StateVector {
    /// Hashes this state's bytes at `positions`, in the order given; the
    /// counterpart of [`SparseBytes::value_hash`] for a live state. Returns
    /// `None` when any position is out of bounds.
    pub fn hash_values_at(&self, positions: &[u32]) -> Option<u64> {
        let bytes = self.as_bytes();
        if positions.iter().any(|&p| p as usize >= bytes.len()) {
            return None;
        }
        Some(fnv1a(positions.iter().map(|&p| bytes[p as usize])))
    }
}

/// A run-based binary difference between two equal-length byte strings.
///
/// Encodes the positions and replacement bytes of every maximal differing
/// run. Applied to the "old" string it reproduces the "new" string. Used to
/// model the compressed cache query/response messages of §4.2.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Delta {
    runs: Vec<(u32, Vec<u8>)>,
    total_len: usize,
}

impl Delta {
    /// Computes the delta that transforms `old` into `new`.
    ///
    /// # Panics
    /// Panics when the two slices have different lengths; deltas are only
    /// meaningful between state vectors of the same machine.
    pub fn diff(old: &[u8], new: &[u8]) -> Self {
        assert_eq!(old.len(), new.len(), "delta requires equal-length states");
        let mut runs = Vec::new();
        let mut i = 0usize;
        while i < old.len() {
            if old[i] == new[i] {
                i += 1;
                continue;
            }
            let start = i;
            while i < old.len() && old[i] != new[i] {
                i += 1;
            }
            runs.push((start as u32, new[start..i].to_vec()));
        }
        Delta { runs, total_len: old.len() }
    }

    /// Applies the delta to `old`, producing the "new" byte string.
    ///
    /// # Panics
    /// Panics when `old` does not have the length the delta was computed for.
    pub fn apply(&self, old: &[u8]) -> Vec<u8> {
        assert_eq!(old.len(), self.total_len, "delta applied to wrong-length state");
        let mut out = old.to_vec();
        for (start, bytes) in &self.runs {
            out[*start as usize..*start as usize + bytes.len()].copy_from_slice(bytes);
        }
        out
    }

    /// Number of differing runs.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Total number of differing bytes.
    pub fn changed_bytes(&self) -> usize {
        self.runs.iter().map(|(_, b)| b.len()).sum()
    }

    /// Serializes the delta (for size accounting and transport modelling).
    ///
    /// Format: `u32` run count, then per run a `u32` offset, `u32` length and
    /// the raw bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(4 + self.runs.len() * 8 + self.changed_bytes());
        buf.extend_from_slice(&(self.runs.len() as u32).to_le_bytes());
        for (start, bytes) in &self.runs {
            buf.extend_from_slice(&start.to_le_bytes());
            buf.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            buf.extend_from_slice(bytes);
        }
        buf
    }

    /// Size in bits of the serialized delta.
    pub fn encoded_bits(&self) -> usize {
        self.to_bytes().len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_capture_sorts_and_dedups() {
        let mut s = StateVector::new(32).unwrap();
        s.set_byte(5, 50);
        s.set_byte(3, 30);
        let sparse = SparseBytes::capture(&s, [5usize, 3, 5, 3]);
        let pairs: Vec<_> = sparse.iter().collect();
        assert_eq!(pairs, vec![(3, 30), (5, 50)]);
        assert_eq!(sparse.len(), 2);
        assert_eq!(sparse.encoded_bits(), 2 * 40);
    }

    #[test]
    fn sparse_match_apply_roundtrip() {
        let mut a = StateVector::new(64).unwrap();
        a.set_byte(10, 1);
        a.set_byte(20, 2);
        let sparse = SparseBytes::capture(&a, [10usize, 20]);
        let mut b = StateVector::new(64).unwrap();
        assert!(!sparse.matches(&b));
        assert_eq!(sparse.mismatches(&b), 2);
        sparse.apply(&mut b);
        assert!(sparse.matches(&b));
        assert_eq!(sparse.mismatches(&b), 0);
    }

    #[test]
    fn fingerprint_distinguishes_values_and_indices() {
        let a = SparseBytes::from_pairs(vec![(1, 1), (2, 2)]);
        let b = SparseBytes::from_pairs(vec![(1, 1), (2, 3)]);
        let c = SparseBytes::from_pairs(vec![(1, 1), (3, 2)]);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
        // The halves split cleanly: same positions ⇒ same position hash;
        // same values ⇒ same value hash.
        assert_eq!(a.position_hash(), b.position_hash());
        assert_ne!(a.position_hash(), c.position_hash());
        assert_eq!(a.value_hash(), c.value_hash());
        assert_ne!(a.value_hash(), b.value_hash());
    }

    #[test]
    fn schema_value_hash_agrees_with_live_state_hash() {
        let mut state = StateVector::new(64).unwrap();
        state.set_byte(10, 7);
        state.set_byte(30, 99);
        let sparse = SparseBytes::capture(&state, [30usize, 10]);
        let schema = PositionSchema::of(&sparse);
        assert_eq!(schema.positions(), &[10, 30]);
        assert_eq!(schema.hash(), sparse.position_hash());
        assert!(schema.describes(&sparse));
        assert!(!schema.describes(&SparseBytes::from_pairs(vec![(10, 7)])));
        // A matching state hashes to the capture's value hash...
        assert_eq!(schema.hash_values_of(&state), Some(sparse.value_hash()));
        // ...a state differing at a captured byte does not...
        let mut other = state.clone();
        other.set_byte(10, 8);
        assert_ne!(schema.hash_values_of(&other), Some(sparse.value_hash()));
        // ...and out-of-bounds positions can never match.
        let tiny = StateVector::new(1).unwrap();
        let far = PositionSchema::of(&SparseBytes::from_pairs(vec![(4096, 1)]));
        assert_eq!(far.hash_values_of(&tiny), None);
        // Empty schemas match every state (an empty read set is always
        // satisfied) and hash to the empty capture's value hash.
        let empty = PositionSchema::of(&SparseBytes::default());
        assert!(empty.is_empty());
        assert_eq!(empty.hash_values_of(&tiny), Some(SparseBytes::default().value_hash()));
    }

    #[test]
    fn sparse_clone_from_reuses_allocation_and_matches_clone() {
        let source = SparseBytes::from_pairs(vec![(1, 1), (2, 2), (3, 3)]);
        let mut dest = SparseBytes::from_pairs(vec![(9, 9)]);
        dest.clone_from(&source);
        assert_eq!(dest, source);
    }

    #[test]
    fn sparse_wire_roundtrip_is_identical() {
        let sparse = SparseBytes::from_pairs(vec![(9, 200), (1, 0), (70_000, 7)]);
        let mut buf = vec![0xAA]; // pre-existing bytes must be preserved
        sparse.encode_into(&mut buf);
        assert_eq!(buf.len(), 1 + sparse.encoded_len());
        let (decoded, consumed) = SparseBytes::decode_from(&buf[1..]).unwrap();
        assert_eq!(consumed, sparse.encoded_len());
        assert_eq!(decoded, sparse);
        assert_eq!(decoded.value_hash(), sparse.value_hash());
        assert_eq!(decoded.position_hash(), sparse.position_hash());
        // The empty set encodes to its bare count and round-trips too.
        let empty = SparseBytes::default();
        let mut buf = Vec::new();
        empty.encode_into(&mut buf);
        assert_eq!(SparseBytes::decode_from(&buf).unwrap(), (empty, 4));
    }

    #[test]
    fn sparse_decode_rejects_truncation_and_overrun() {
        let sparse = SparseBytes::from_pairs(vec![(1, 1), (2, 2)]);
        let mut buf = Vec::new();
        sparse.encode_into(&mut buf);
        for cut in 0..buf.len() {
            assert!(SparseBytes::decode_from(&buf[..cut]).is_none(), "prefix {cut} accepted");
        }
        // A count pointing past the buffer is refused rather than read.
        let huge = u32::MAX.to_le_bytes();
        assert!(SparseBytes::decode_from(&huge).is_none());
    }

    #[test]
    fn schema_wire_roundtrip_recomputes_the_hash() {
        let sparse = SparseBytes::from_pairs(vec![(3, 1), (500, 2), (7, 9)]);
        let schema = PositionSchema::of(&sparse);
        let mut buf = Vec::new();
        schema.encode_into(&mut buf);
        let (decoded, consumed) = PositionSchema::decode_from(&buf).unwrap();
        assert_eq!(consumed, buf.len());
        assert_eq!(decoded, schema);
        assert_eq!(decoded.hash(), schema.hash());
        for cut in 0..buf.len() {
            assert!(PositionSchema::decode_from(&buf[..cut]).is_none());
        }
        // Unsorted or duplicated positions cannot come from a real schema.
        let mut bad = Vec::new();
        bad.extend_from_slice(&2u32.to_le_bytes());
        bad.extend_from_slice(&9u32.to_le_bytes());
        bad.extend_from_slice(&3u32.to_le_bytes());
        assert!(PositionSchema::decode_from(&bad).is_none());
    }

    #[test]
    fn delta_roundtrip() {
        let old = vec![0u8; 100];
        let mut new = old.clone();
        new[3] = 1;
        new[4] = 2;
        new[50] = 9;
        let delta = Delta::diff(&old, &new);
        assert_eq!(delta.run_count(), 2);
        assert_eq!(delta.changed_bytes(), 3);
        assert_eq!(delta.apply(&old), new);
    }

    #[test]
    fn delta_of_identical_states_is_empty_and_small() {
        let bytes = vec![7u8; 1000];
        let delta = Delta::diff(&bytes, &bytes);
        assert_eq!(delta.run_count(), 0);
        assert_eq!(delta.changed_bytes(), 0);
        assert!(delta.encoded_bits() <= 64);
        assert_eq!(delta.apply(&bytes), bytes);
    }

    #[test]
    fn delta_is_much_smaller_than_full_state_for_sparse_changes() {
        let old = vec![0u8; 100_000];
        let mut new = old.clone();
        for i in (0..100).map(|k| k * 7) {
            new[i * 10] = 0xff;
        }
        let delta = Delta::diff(&old, &new);
        assert!(delta.encoded_bits() < old.len() * 8 / 50);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn delta_requires_equal_lengths() {
        let _ = Delta::diff(&[1, 2, 3], &[1, 2]);
    }
}
