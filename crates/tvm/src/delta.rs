//! Sparse state representations and binary deltas.
//!
//! Cache entries in ASC are "compressed pairs of start and end states": only
//! the bytes in the read set (start) and write set (end) are stored, as a
//! sorted sparse list of `(index, value)` pairs ([`SparseBytes`]). Queries to
//! the distributed cache are additionally compressed as a binary difference
//! against the previous query ([`Delta`]); the paper uses the Myers
//! difference algorithm, and this module provides an equivalent run-based
//! byte-delta codec whose encoded size feeds the "cache query size" row of
//! Table 1.

use crate::state::StateVector;

/// FNV-1a over a byte stream: a cheap, deterministic 64-bit hash used for
/// cache sharding and duplicate-work detection across the workspace.
pub fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in bytes {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// A sparse, sorted set of `(byte index, value)` pairs drawn from a state
/// vector.
///
/// # Examples
/// ```
/// use asc_tvm::delta::SparseBytes;
/// use asc_tvm::state::StateVector;
/// let mut s = StateVector::new(64).unwrap();
/// s.set_byte(10, 7);
/// let sparse = SparseBytes::capture(&s, [10usize, 20usize]);
/// assert!(sparse.matches(&s));
/// let mut other = s.clone();
/// other.set_byte(10, 8);
/// assert!(!sparse.matches(&other));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct SparseBytes {
    entries: Vec<(u32, u8)>,
}

impl SparseBytes {
    /// Captures the values of `indices` from `state`.
    ///
    /// Indices are deduplicated and stored sorted.
    pub fn capture(state: &StateVector, indices: impl IntoIterator<Item = usize>) -> Self {
        let mut entries: Vec<(u32, u8)> =
            indices.into_iter().map(|i| (i as u32, state.byte(i))).collect();
        entries.sort_unstable_by_key(|(i, _)| *i);
        entries.dedup_by_key(|(i, _)| *i);
        SparseBytes { entries }
    }

    /// Builds a sparse set directly from `(index, value)` pairs.
    pub fn from_pairs(mut pairs: Vec<(u32, u8)>) -> Self {
        pairs.sort_unstable_by_key(|(i, _)| *i);
        pairs.dedup_by_key(|(i, _)| *i);
        SparseBytes { entries: pairs }
    }

    /// Number of bytes captured.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the `(index, value)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u8)> + '_ {
        self.entries.iter().copied()
    }

    /// Whether `state` agrees with every captured byte.
    ///
    /// Indices beyond the end of `state` never match.
    pub fn matches(&self, state: &StateVector) -> bool {
        self.entries
            .iter()
            .all(|&(i, v)| (i as usize) < state.len_bytes() && state.byte(i as usize) == v)
    }

    /// Number of captured bytes that disagree with `state`.
    pub fn mismatches(&self, state: &StateVector) -> usize {
        self.entries
            .iter()
            .filter(|&&(i, v)| (i as usize) >= state.len_bytes() || state.byte(i as usize) != v)
            .count()
    }

    /// Writes every captured byte into `state` (the cache "fast-forward").
    ///
    /// Indices beyond the end of `state` are ignored; in practice all
    /// captures come from states of the same machine.
    pub fn apply(&self, state: &mut StateVector) {
        for &(i, v) in &self.entries {
            if (i as usize) < state.len_bytes() {
                state.set_byte(i as usize, v);
            }
        }
    }

    /// A stable 64-bit hash of the contents, used as a cheap cache index key.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over the sorted (index, value) stream: deterministic across
        // runs, unlike the default hasher.
        fnv1a(self.entries.iter().flat_map(|&(i, v)| i.to_le_bytes().into_iter().chain([v])))
    }

    /// Size in bits of the serialized sparse representation (5 bytes per
    /// entry: a 32-bit index plus the value). This is what Table 1 reports as
    /// the cache query size.
    pub fn encoded_bits(&self) -> usize {
        self.entries.len() * (4 + 1) * 8
    }
}

impl FromIterator<(u32, u8)> for SparseBytes {
    fn from_iter<T: IntoIterator<Item = (u32, u8)>>(iter: T) -> Self {
        SparseBytes::from_pairs(iter.into_iter().collect())
    }
}

/// A run-based binary difference between two equal-length byte strings.
///
/// Encodes the positions and replacement bytes of every maximal differing
/// run. Applied to the "old" string it reproduces the "new" string. Used to
/// model the compressed cache query/response messages of §4.2.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Delta {
    runs: Vec<(u32, Vec<u8>)>,
    total_len: usize,
}

impl Delta {
    /// Computes the delta that transforms `old` into `new`.
    ///
    /// # Panics
    /// Panics when the two slices have different lengths; deltas are only
    /// meaningful between state vectors of the same machine.
    pub fn diff(old: &[u8], new: &[u8]) -> Self {
        assert_eq!(old.len(), new.len(), "delta requires equal-length states");
        let mut runs = Vec::new();
        let mut i = 0usize;
        while i < old.len() {
            if old[i] == new[i] {
                i += 1;
                continue;
            }
            let start = i;
            while i < old.len() && old[i] != new[i] {
                i += 1;
            }
            runs.push((start as u32, new[start..i].to_vec()));
        }
        Delta { runs, total_len: old.len() }
    }

    /// Applies the delta to `old`, producing the "new" byte string.
    ///
    /// # Panics
    /// Panics when `old` does not have the length the delta was computed for.
    pub fn apply(&self, old: &[u8]) -> Vec<u8> {
        assert_eq!(old.len(), self.total_len, "delta applied to wrong-length state");
        let mut out = old.to_vec();
        for (start, bytes) in &self.runs {
            out[*start as usize..*start as usize + bytes.len()].copy_from_slice(bytes);
        }
        out
    }

    /// Number of differing runs.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Total number of differing bytes.
    pub fn changed_bytes(&self) -> usize {
        self.runs.iter().map(|(_, b)| b.len()).sum()
    }

    /// Serializes the delta (for size accounting and transport modelling).
    ///
    /// Format: `u32` run count, then per run a `u32` offset, `u32` length and
    /// the raw bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(4 + self.runs.len() * 8 + self.changed_bytes());
        buf.extend_from_slice(&(self.runs.len() as u32).to_le_bytes());
        for (start, bytes) in &self.runs {
            buf.extend_from_slice(&start.to_le_bytes());
            buf.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            buf.extend_from_slice(bytes);
        }
        buf
    }

    /// Size in bits of the serialized delta.
    pub fn encoded_bits(&self) -> usize {
        self.to_bytes().len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_capture_sorts_and_dedups() {
        let mut s = StateVector::new(32).unwrap();
        s.set_byte(5, 50);
        s.set_byte(3, 30);
        let sparse = SparseBytes::capture(&s, [5usize, 3, 5, 3]);
        let pairs: Vec<_> = sparse.iter().collect();
        assert_eq!(pairs, vec![(3, 30), (5, 50)]);
        assert_eq!(sparse.len(), 2);
        assert_eq!(sparse.encoded_bits(), 2 * 40);
    }

    #[test]
    fn sparse_match_apply_roundtrip() {
        let mut a = StateVector::new(64).unwrap();
        a.set_byte(10, 1);
        a.set_byte(20, 2);
        let sparse = SparseBytes::capture(&a, [10usize, 20]);
        let mut b = StateVector::new(64).unwrap();
        assert!(!sparse.matches(&b));
        assert_eq!(sparse.mismatches(&b), 2);
        sparse.apply(&mut b);
        assert!(sparse.matches(&b));
        assert_eq!(sparse.mismatches(&b), 0);
    }

    #[test]
    fn fingerprint_distinguishes_values_and_indices() {
        let a = SparseBytes::from_pairs(vec![(1, 1), (2, 2)]);
        let b = SparseBytes::from_pairs(vec![(1, 1), (2, 3)]);
        let c = SparseBytes::from_pairs(vec![(1, 1), (3, 2)]);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
    }

    #[test]
    fn delta_roundtrip() {
        let old = vec![0u8; 100];
        let mut new = old.clone();
        new[3] = 1;
        new[4] = 2;
        new[50] = 9;
        let delta = Delta::diff(&old, &new);
        assert_eq!(delta.run_count(), 2);
        assert_eq!(delta.changed_bytes(), 3);
        assert_eq!(delta.apply(&old), new);
    }

    #[test]
    fn delta_of_identical_states_is_empty_and_small() {
        let bytes = vec![7u8; 1000];
        let delta = Delta::diff(&bytes, &bytes);
        assert_eq!(delta.run_count(), 0);
        assert_eq!(delta.changed_bytes(), 0);
        assert!(delta.encoded_bits() <= 64);
        assert_eq!(delta.apply(&bytes), bytes);
    }

    #[test]
    fn delta_is_much_smaller_than_full_state_for_sparse_changes() {
        let old = vec![0u8; 100_000];
        let mut new = old.clone();
        for i in (0..100).map(|k| k * 7) {
            new[i * 10] = 0xff;
        }
        let delta = Delta::diff(&old, &new);
        assert!(delta.encoded_bits() < old.len() * 8 / 50);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn delta_requires_equal_lengths() {
        let _ = Delta::diff(&[1, 2, 3], &[1, 2]);
    }
}
