//! The transition function: execute one instruction on a state vector.
//!
//! This is the paper's `transition(uint8_t *x, uint8_t *g, int n)`: it has no
//! hidden state and refers to no globals. It fetches the instruction pointed
//! to by the IP stored *inside* the state vector, simulates it, writes the
//! resulting changes back into the state vector, and (optionally) updates the
//! per-byte dependency vector `g` on every read and write it performs —
//! including the IP, flags, register file and instruction fetch itself.
//!
//! ## Monomorphized hot path
//!
//! Dependency tracking is abstracted behind the [`DepSink`] trait rather
//! than an `Option<&mut DepVector>`: the main thread executes with
//! [`NoDeps`], whose recording methods are empty and compile away entirely,
//! while speculative workers pass a [`DepVector`]. Each combination is a
//! separate monomorphization, so the untracked path carries no per-access
//! branches.
//!
//! Instruction decoding is likewise abstracted behind [`DecodeCache`]: a
//! [`DecodedCache`] memoizes the decoded form of each (8-byte-aligned)
//! instruction slot, invalidated on stores into the covered region, so a hot
//! loop stops re-decoding the same 8 raw bytes on every retired instruction.
//! [`NoDecodeCache`] is the zero-cost "always decode" impl.
//!
//! ## Tier-0 of a two-tier engine
//!
//! This module is **tier-0**: one fetch → decode(-cache) → dispatch → retire
//! cycle per instruction, the ground truth every other execution strategy
//! must match bit-for-bit. [`crate::tier`] builds **tier-1** on top of it:
//! hot straight-line regions are compiled into blocks of pre-decoded, fused
//! micro-ops and retired by a block-threaded dispatch loop, falling back to
//! [`transition_cached`] at the first unsupported opcode, block exit, budget
//! boundary or invalidation. The shared per-opcode executor
//! (`exec_operate`) and the shared invalidation path (a [`BlockCache`]
//! *contains* the [`DecodedCache`] and invalidates both through one
//! [`DecodeCache::invalidate`] call) are what keep the two tiers from ever
//! disagreeing about semantics or staleness.
//!
//! [`BlockCache`]: crate::tier::BlockCache

use crate::deps::DepVector;
use crate::encode::decode;
use crate::error::{VmError, VmResult};
use crate::isa::{Flags, Instruction, Opcode, Reg, INSTRUCTION_BYTES, SP};
use crate::state::{StateVector, FLAGS_OFFSET, IP_OFFSET, MEM_BASE, REG_OFFSET};

/// What happened when a single instruction executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The instruction completed and execution may continue.
    Continue,
    /// A `halt` instruction executed; the state vector is final.
    Halted,
}

/// Receiver for the byte-granularity access trace of a transition.
///
/// The two implementations are [`NoDeps`] (methods compile to nothing; the
/// main thread's zero-cost path) and [`DepVector`] (the paper's `g` vector,
/// used by speculative workers and the measured runtime).
pub trait DepSink {
    /// Records a read of `len` consecutive state bytes starting at `index`.
    fn note_read(&mut self, index: usize, len: usize);
    /// Records a write of `len` consecutive state bytes starting at `index`.
    fn note_write(&mut self, index: usize, len: usize);
}

/// The zero-cost [`DepSink`]: both methods are empty and inline away.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoDeps;

impl DepSink for NoDeps {
    #[inline(always)]
    fn note_read(&mut self, _index: usize, _len: usize) {}
    #[inline(always)]
    fn note_write(&mut self, _index: usize, _len: usize) {}
}

impl DepSink for DepVector {
    #[inline]
    fn note_read(&mut self, index: usize, len: usize) {
        self.note_read_range(index, len);
    }
    #[inline]
    fn note_write(&mut self, index: usize, len: usize) {
        self.note_write_range(index, len);
    }
}

/// Source of decoded instructions for the fetch stage, keyed on
/// memory-segment addresses (the same addresses the IP holds).
pub trait DecodeCache {
    /// A previously decoded instruction for the slot at memory address
    /// `addr`, if still valid. A populated slot also certifies that the
    /// 8-byte fetch range at `addr` is in bounds (memory never resizes), so
    /// hits skip the bounds re-check.
    fn cached(&self, addr: u32) -> Option<Instruction>;
    /// Remembers the decoded instruction for the slot at `addr`.
    fn remember(&mut self, addr: u32, instruction: Instruction);
    /// Invalidates any cached slots overlapping the written address range.
    fn invalidate(&mut self, addr: u32, len: u32);
}

/// The zero-cost [`DecodeCache`]: never caches, so every fetch decodes.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoDecodeCache;

impl DecodeCache for NoDecodeCache {
    #[inline(always)]
    fn cached(&self, _addr: u32) -> Option<Instruction> {
        None
    }
    #[inline(always)]
    fn remember(&mut self, _addr: u32, _instruction: Instruction) {}
    #[inline(always)]
    fn invalidate(&mut self, _addr: u32, _len: u32) {}
}

/// A decoded-instruction cache over the state vector's memory segment.
///
/// One slot per 8-byte-aligned instruction position. The code region of a
/// TVM program is immutable in practice, but the cache does not assume so:
/// stores into covered bytes invalidate the overlapping slots, and the
/// machine clears the cache when state bytes are patched from outside the
/// transition function (fast-forwards, direct `state_mut` access). Results
/// therefore stay bit-for-bit identical to uncached execution even for
/// self-modifying programs.
#[derive(Debug, Clone)]
pub struct DecodedCache {
    slots: Vec<Option<Instruction>>,
}

impl DecodedCache {
    /// Creates an empty cache sized for `state`'s memory segment.
    pub fn new(state: &StateVector) -> Self {
        // Only addresses with a full in-bounds 8-byte fetch get a slot, so a
        // populated slot certifies bounds.
        let instruction_positions = state.mem_size() / INSTRUCTION_BYTES as usize;
        DecodedCache { slots: vec![None; instruction_positions] }
    }

    /// Forgets every cached slot.
    pub fn clear(&mut self) {
        self.slots.fill(None);
    }

    /// Clears the cache and resizes it for `state`'s memory segment, reusing
    /// the existing allocation when the segment size is unchanged. Long-lived
    /// speculation workers call this between jobs instead of constructing a
    /// fresh cache per superstep. The cache is always cleared: a new job's
    /// state may hold different code bytes at the same addresses.
    pub fn reset_for(&mut self, state: &StateVector) {
        let instruction_positions = state.mem_size() / INSTRUCTION_BYTES as usize;
        if self.slots.len() == instruction_positions {
            self.slots.fill(None);
        } else {
            self.slots.clear();
            self.slots.resize(instruction_positions, None);
        }
    }
}

impl DecodeCache for DecodedCache {
    #[inline]
    fn cached(&self, addr: u32) -> Option<Instruction> {
        if addr % INSTRUCTION_BYTES != 0 {
            return None;
        }
        self.slots.get((addr / INSTRUCTION_BYTES) as usize).copied().flatten()
    }

    #[inline]
    fn remember(&mut self, addr: u32, instruction: Instruction) {
        if addr % INSTRUCTION_BYTES != 0 {
            return;
        }
        if let Some(slot) = self.slots.get_mut((addr / INSTRUCTION_BYTES) as usize) {
            *slot = Some(instruction);
        }
    }

    #[inline]
    fn invalidate(&mut self, addr: u32, len: u32) {
        if len == 0 {
            return;
        }
        let first = (addr / INSTRUCTION_BYTES) as usize;
        let last = ((addr + len - 1) / INSTRUCTION_BYTES) as usize;
        for slot in first..=last.min(self.slots.len().saturating_sub(1)) {
            if let Some(entry) = self.slots.get_mut(slot) {
                *entry = None;
            }
        }
    }
}

/// Accessor that funnels every state-vector access through the dependency
/// sink, and every memory store through decode-cache invalidation. Both
/// type parameters monomorphize: with [`NoDeps`] + [`NoDecodeCache`] the
/// recording calls vanish entirely. Shared with the tier-1 block executor
/// ([`crate::tier`]), which replays the same accessors in the same order so
/// fused micro-ops record byte-identical dependency footprints.
pub(crate) struct Ctx<'a, D: DepSink, C: DecodeCache> {
    pub(crate) state: &'a mut StateVector,
    pub(crate) deps: &'a mut D,
    pub(crate) code: &'a mut C,
}

impl<'a, D: DepSink, C: DecodeCache> Ctx<'a, D, C> {
    #[inline]
    pub(crate) fn note_read(&mut self, index: usize, len: usize) {
        self.deps.note_read(index, len);
    }

    #[inline]
    pub(crate) fn note_write(&mut self, index: usize, len: usize) {
        self.deps.note_write(index, len);
    }

    /// Reads a 32-bit word at an absolute state byte index.
    #[inline]
    fn read_word_at(&mut self, index: usize) -> u32 {
        self.note_read(index, 4);
        self.state.word(index)
    }

    /// Writes a 32-bit word at an absolute state byte index.
    #[inline]
    fn write_word_at(&mut self, index: usize, value: u32) {
        self.note_write(index, 4);
        self.state.set_word(index, value);
    }

    #[inline]
    pub(crate) fn read_reg(&mut self, reg: u8) -> u32 {
        self.read_word_at(REG_OFFSET + reg as usize * 4)
    }

    #[inline]
    pub(crate) fn write_reg(&mut self, reg: u8, value: u32) {
        self.write_word_at(REG_OFFSET + reg as usize * 4, value);
    }

    #[inline]
    fn read_ip(&mut self) -> u32 {
        self.read_word_at(IP_OFFSET)
    }

    #[inline]
    pub(crate) fn write_ip(&mut self, value: u32) {
        self.write_word_at(IP_OFFSET, value);
    }

    #[inline]
    pub(crate) fn read_flags(&mut self) -> Flags {
        Flags::from_word(self.read_word_at(FLAGS_OFFSET))
    }

    #[inline]
    pub(crate) fn write_flags(&mut self, flags: Flags) {
        self.write_word_at(FLAGS_OFFSET, flags.to_word());
    }

    /// Fetches and decodes the instruction at memory address `addr`,
    /// consulting the decode cache first. The fetch read is recorded in the
    /// dependency sink whether or not the decode was cached — the executed
    /// trajectory depends on those bytes either way. A cache hit skips both
    /// the decode and the bounds check (a populated slot certifies the fetch
    /// range; memory never resizes).
    fn fetch_decoded(&mut self, addr: u32) -> VmResult<Instruction> {
        if let Some(instruction) = self.code.cached(addr) {
            self.note_read(MEM_BASE + addr as usize, INSTRUCTION_BYTES as usize);
            return Ok(instruction);
        }
        let index = self.state.mem_index(addr, INSTRUCTION_BYTES)?;
        self.note_read(index, INSTRUCTION_BYTES as usize);
        let mut bytes = [0u8; INSTRUCTION_BYTES as usize];
        bytes.copy_from_slice(&self.state.as_bytes()[index..index + INSTRUCTION_BYTES as usize]);
        let instruction = decode(&bytes, addr)?;
        self.code.remember(addr, instruction);
        Ok(instruction)
    }

    fn load_word(&mut self, addr: u32) -> VmResult<u32> {
        let index = self.state.mem_index(addr, 4)?;
        Ok(self.read_word_at(index))
    }

    fn store_word(&mut self, addr: u32, value: u32) -> VmResult<()> {
        let index = self.state.mem_index(addr, 4)?;
        self.code.invalidate(addr, 4);
        self.write_word_at(index, value);
        Ok(())
    }

    fn load_byte(&mut self, addr: u32) -> VmResult<u32> {
        let index = self.state.mem_index(addr, 1)?;
        self.note_read(index, 1);
        Ok(self.state.byte(index) as u32)
    }

    fn store_byte(&mut self, addr: u32, value: u8) -> VmResult<()> {
        let index = self.state.mem_index(addr, 1)?;
        self.code.invalidate(addr, 1);
        self.note_write(index, 1);
        self.state.set_byte(index, value);
        Ok(())
    }
}

/// Executes exactly one instruction.
///
/// When `deps` is supplied, every byte read or written — IP, flags, register
/// file, instruction fetch and data memory — is recorded in the dependency
/// finite-state machine, exactly as the paper's speculative workers do. Pass
/// `None` for untracked (main-thread or ground-truth) execution.
///
/// # Errors
/// Propagates decode errors ([`VmError::InvalidOpcode`],
/// [`VmError::InvalidRegister`]), [`VmError::MemoryOutOfBounds`] for wild
/// loads/stores/fetches and [`VmError::DivideByZero`].
///
/// # Examples
/// ```
/// # use asc_tvm::{state::StateVector, exec::{transition, StepOutcome}};
/// # use asc_tvm::encode::encode_all;
/// # use asc_tvm::isa::{Instruction, Opcode, Reg};
/// let mut state = StateVector::new(256)?;
/// let image = encode_all(&[
///     Instruction::ri(Opcode::MovI, Reg::new(1).unwrap(), 21),
///     Instruction::rri(Opcode::MulI, Reg::new(1).unwrap(), Reg::new(1).unwrap(), 2),
///     Instruction::bare(Opcode::Halt),
/// ]);
/// state.write_mem(0, &image)?;
/// while transition(&mut state, None)? == StepOutcome::Continue {}
/// assert_eq!(state.reg(Reg::new(1).unwrap()), 42);
/// # Ok::<(), asc_tvm::error::VmError>(())
/// ```
pub fn transition(state: &mut StateVector, deps: Option<&mut DepVector>) -> VmResult<StepOutcome> {
    match deps {
        Some(deps) => transition_with(state, deps),
        None => transition_with(state, &mut NoDeps),
    }
}

/// Executes exactly one instruction with a monomorphized dependency sink.
///
/// Pass [`NoDeps`] for the zero-cost untracked path or a
/// [`DepVector`] for tracked execution; see [`transition`] for semantics
/// and errors.
pub fn transition_with<D: DepSink>(state: &mut StateVector, deps: &mut D) -> VmResult<StepOutcome> {
    transition_cached(state, deps, &mut NoDecodeCache)
}

/// Executes exactly one instruction with a monomorphized dependency sink and
/// decode cache. This is the hottest entry point: the main thread runs it as
/// `transition_cached(state, &mut NoDeps, &mut DecodedCache)`, which neither
/// branches on dependency tracking nor re-decodes cached instructions.
///
/// See [`transition`] for semantics and errors.
pub fn transition_cached<D: DepSink, C: DecodeCache>(
    state: &mut StateVector,
    deps: &mut D,
    code: &mut C,
) -> VmResult<StepOutcome> {
    let mut ctx = Ctx { state, deps, code };

    let ip = ctx.read_ip();
    let instruction = ctx.fetch_decoded(ip)?;
    let next_ip = ip.wrapping_add(INSTRUCTION_BYTES);

    use Opcode::*;
    let outcome = match instruction.opcode {
        Halt => {
            // Leave the IP pointing at the halt instruction so a halted state
            // is a fixed point of the transition function.
            ctx.write_ip(ip);
            return Ok(StepOutcome::Halted);
        }
        Jmp => {
            ctx.write_ip(instruction.imm as u32);
            StepOutcome::Continue
        }
        Jeq | Jne | Jlt | Jle | Jgt | Jge | Jltu | Jgeu => {
            let flags = ctx.read_flags();
            let taken = branch_taken(instruction.opcode, flags);
            ctx.write_ip(if taken { instruction.imm as u32 } else { next_ip });
            StepOutcome::Continue
        }
        JmpR => {
            let target = ctx.read_reg(instruction.a);
            ctx.write_ip(target);
            StepOutcome::Continue
        }
        Call => {
            let sp = ctx.read_reg(SP.index() as u8).wrapping_sub(4);
            ctx.store_word(sp, next_ip)?;
            ctx.write_reg(SP.index() as u8, sp);
            ctx.write_ip(instruction.imm as u32);
            StepOutcome::Continue
        }
        Ret => {
            let sp = ctx.read_reg(SP.index() as u8);
            let target = ctx.load_word(sp)?;
            ctx.write_reg(SP.index() as u8, sp.wrapping_add(4));
            ctx.write_ip(target);
            StepOutcome::Continue
        }
        _ => {
            exec_operate(&mut ctx, &instruction, ip)?;
            ctx.write_ip(next_ip);
            StepOutcome::Continue
        }
    };
    Ok(outcome)
}

/// Executes one *straight-line* instruction — anything that is not control
/// flow (`jmp`/conditional jumps/`jmpr`/`call`/`ret`) or `halt` — performing
/// every state access except the fetch and the IP update, in exactly the
/// interpreter's order. Shared between [`transition_cached`] (which follows
/// it with `write_ip(next_ip)`) and the tier-1 block executor in
/// [`crate::tier`] (which elides the per-instruction IP writes inside a
/// block), so the two tiers cannot drift apart semantically.
///
/// `ip` is the instruction's own address, used only for fault attribution.
#[inline(always)]
pub(crate) fn exec_operate<D: DepSink, C: DecodeCache>(
    ctx: &mut Ctx<'_, D, C>,
    instruction: &Instruction,
    ip: u32,
) -> VmResult<()> {
    use Opcode::*;
    match instruction.opcode {
        Nop => {}
        MovI => {
            ctx.write_reg(instruction.a, instruction.imm as u32);
        }
        Mov => {
            let v = ctx.read_reg(instruction.b);
            ctx.write_reg(instruction.a, v);
        }
        Neg => {
            let v = ctx.read_reg(instruction.b);
            ctx.write_reg(instruction.a, (v as i32).wrapping_neg() as u32);
        }
        Not => {
            let v = ctx.read_reg(instruction.b);
            ctx.write_reg(instruction.a, !v);
        }
        Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | Sar => {
            let lhs = ctx.read_reg(instruction.b);
            let rhs = ctx.read_reg(instruction.c);
            let value = alu(instruction.opcode, lhs, rhs, ip)?;
            ctx.write_reg(instruction.a, value);
        }
        AddI | MulI | DivI | RemI | AndI | OrI | XorI | ShlI | ShrI | SarI => {
            let lhs = ctx.read_reg(instruction.b);
            let rhs = instruction.imm as u32;
            let op = match instruction.opcode {
                AddI => Add,
                MulI => Mul,
                DivI => Div,
                RemI => Rem,
                AndI => And,
                OrI => Or,
                XorI => Xor,
                ShlI => Shl,
                ShrI => Shr,
                SarI => Sar,
                _ => unreachable!("immediate ALU mapping"),
            };
            let value = alu(op, lhs, rhs, ip)?;
            ctx.write_reg(instruction.a, value);
        }
        LdW => {
            let base = ctx.read_reg(instruction.b);
            let addr = base.wrapping_add(instruction.imm as u32);
            let value = ctx.load_word(addr)?;
            ctx.write_reg(instruction.a, value);
        }
        LdB => {
            let base = ctx.read_reg(instruction.b);
            let addr = base.wrapping_add(instruction.imm as u32);
            let value = ctx.load_byte(addr)?;
            ctx.write_reg(instruction.a, value);
        }
        StW => {
            let base = ctx.read_reg(instruction.a);
            let value = ctx.read_reg(instruction.b);
            let addr = base.wrapping_add(instruction.imm as u32);
            ctx.store_word(addr, value)?;
        }
        StB => {
            let base = ctx.read_reg(instruction.a);
            let value = ctx.read_reg(instruction.b);
            let addr = base.wrapping_add(instruction.imm as u32);
            ctx.store_byte(addr, value as u8)?;
        }
        Cmp => {
            let lhs = ctx.read_reg(instruction.a);
            let rhs = ctx.read_reg(instruction.b);
            ctx.write_flags(Flags::compare(lhs, rhs));
        }
        CmpI => {
            let lhs = ctx.read_reg(instruction.a);
            ctx.write_flags(Flags::compare(lhs, instruction.imm as u32));
        }
        Push => {
            let value = ctx.read_reg(instruction.a);
            let sp = ctx.read_reg(SP.index() as u8).wrapping_sub(4);
            ctx.store_word(sp, value)?;
            ctx.write_reg(SP.index() as u8, sp);
        }
        Pop => {
            let sp = ctx.read_reg(SP.index() as u8);
            let value = ctx.load_word(sp)?;
            ctx.write_reg(SP.index() as u8, sp.wrapping_add(4));
            ctx.write_reg(instruction.a, value);
        }
        Halt | Jmp | Jeq | Jne | Jlt | Jle | Jgt | Jge | Jltu | Jgeu | JmpR | Call | Ret => {
            unreachable!("{} is not a straight-line opcode", instruction.opcode)
        }
    }
    Ok(())
}

/// Whether a conditional jump is taken under the given flags. Shared by the
/// interpreter and the tier-1 fused compare+branch handler.
#[inline]
pub(crate) fn branch_taken(opcode: Opcode, flags: Flags) -> bool {
    use Opcode::*;
    match opcode {
        Jeq => flags.eq,
        Jne => !flags.eq,
        Jlt => flags.lt_signed,
        Jle => flags.lt_signed || flags.eq,
        Jgt => !flags.lt_signed && !flags.eq,
        Jge => !flags.lt_signed,
        Jltu => flags.lt_unsigned,
        Jgeu => !flags.lt_unsigned,
        other => unreachable!("{other} is not a conditional jump"),
    }
}

/// Three-register ALU semantics shared by the register and immediate forms.
fn alu(op: Opcode, lhs: u32, rhs: u32, addr: u32) -> VmResult<u32> {
    use Opcode::*;
    Ok(match op {
        Add => lhs.wrapping_add(rhs),
        Sub => lhs.wrapping_sub(rhs),
        Mul => lhs.wrapping_mul(rhs),
        Div => {
            if rhs == 0 {
                return Err(VmError::DivideByZero { addr });
            }
            ((lhs as i32).wrapping_div(rhs as i32)) as u32
        }
        Rem => {
            if rhs == 0 {
                return Err(VmError::DivideByZero { addr });
            }
            ((lhs as i32).wrapping_rem(rhs as i32)) as u32
        }
        And => lhs & rhs,
        Or => lhs | rhs,
        Xor => lhs ^ rhs,
        Shl => lhs.wrapping_shl(rhs & 31),
        Shr => lhs.wrapping_shr(rhs & 31),
        Sar => ((lhs as i32).wrapping_shr(rhs & 31)) as u32,
        other => unreachable!("{other} is not an ALU opcode"),
    })
}

/// Decodes (without executing) the instruction the state vector's IP points
/// at. Useful for tracing, the disassembler and the recognizer's diagnostics.
///
/// # Errors
/// Returns the same errors as instruction fetch and decode.
pub fn current_instruction(state: &StateVector) -> VmResult<Instruction> {
    let ip = state.ip();
    let index = state.mem_index(ip, INSTRUCTION_BYTES)?;
    let mut raw = [0u8; INSTRUCTION_BYTES as usize];
    raw.copy_from_slice(&state.as_bytes()[index..index + INSTRUCTION_BYTES as usize]);
    decode(&raw, ip)
}

/// Returns the register that an instruction writes, if any. Used by
/// diagnostic tooling; not needed by the execution engine itself.
pub fn destination_register(instruction: &Instruction) -> Option<Reg> {
    use Opcode::*;
    match instruction.opcode {
        MovI | Mov | Neg | Not | Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | Sar
        | AddI | MulI | DivI | RemI | AndI | OrI | XorI | ShlI | ShrI | SarI | LdW | LdB | Pop => {
            Reg::new(instruction.a)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_all;
    use crate::isa::Instruction as I;

    fn r(i: u8) -> Reg {
        Reg::new(i).unwrap()
    }

    /// Builds a state vector with the given program loaded at address 0 and
    /// the stack pointer at the top of memory.
    fn machine_with(program: &[I], mem: usize) -> StateVector {
        let mut state = StateVector::new(mem).unwrap();
        state.write_mem(0, &encode_all(program)).unwrap();
        state.set_reg(SP, mem as u32);
        state
    }

    fn run(state: &mut StateVector, max: usize) -> usize {
        let mut executed = 0;
        for _ in 0..max {
            match transition(state, None).unwrap() {
                StepOutcome::Continue => executed += 1,
                StepOutcome::Halted => return executed,
            }
        }
        panic!("program did not halt within {max} instructions");
    }

    #[test]
    fn arithmetic_and_halt() {
        let mut state = machine_with(
            &[
                I::ri(Opcode::MovI, r(1), 6),
                I::ri(Opcode::MovI, r(2), 7),
                I::rrr(Opcode::Mul, r(3), r(1), r(2)),
                I::rri(Opcode::AddI, r(3), r(3), -2),
                I::bare(Opcode::Halt),
            ],
            256,
        );
        run(&mut state, 100);
        assert_eq!(state.reg(r(3)), 40);
    }

    #[test]
    fn halted_state_is_fixed_point() {
        let mut state = machine_with(&[I::bare(Opcode::Halt)], 64);
        assert_eq!(transition(&mut state, None).unwrap(), StepOutcome::Halted);
        let snapshot = state.clone();
        assert_eq!(transition(&mut state, None).unwrap(), StepOutcome::Halted);
        assert_eq!(state, snapshot);
    }

    #[test]
    fn signed_division_and_negative_numbers() {
        let mut state = machine_with(
            &[
                I::ri(Opcode::MovI, r(1), -17),
                I::ri(Opcode::MovI, r(2), 5),
                I::rrr(Opcode::Div, r(3), r(1), r(2)),
                I::rrr(Opcode::Rem, r(4), r(1), r(2)),
                I::bare(Opcode::Halt),
            ],
            256,
        );
        run(&mut state, 100);
        assert_eq!(state.reg(r(3)) as i32, -3);
        assert_eq!(state.reg(r(4)) as i32, -2);
    }

    #[test]
    fn divide_by_zero_is_an_error() {
        let mut state =
            machine_with(&[I::ri(Opcode::MovI, r(1), 3), I::rri(Opcode::DivI, r(2), r(1), 0)], 128);
        transition(&mut state, None).unwrap();
        let err = transition(&mut state, None).unwrap_err();
        assert_eq!(err, VmError::DivideByZero { addr: 8 });
    }

    #[test]
    fn loads_and_stores_round_trip_memory() {
        let mut state = machine_with(
            &[
                I::ri(Opcode::MovI, r(1), 200), // base address
                I::ri(Opcode::MovI, r(2), 0x1234_5678u32 as i32),
                I::rri(Opcode::StW, r(1), r(2), 4), // mem[204] = r2
                I::rri(Opcode::LdW, r(3), r(1), 4), // r3 = mem[204]
                I::rri(Opcode::LdB, r(4), r(1), 4), // r4 = low byte
                I::bare(Opcode::Halt),
            ],
            512,
        );
        run(&mut state, 100);
        assert_eq!(state.reg(r(3)), 0x1234_5678);
        assert_eq!(state.reg(r(4)), 0x78);
        assert_eq!(state.load_word(204).unwrap(), 0x1234_5678);
    }

    #[test]
    fn store_byte_only_touches_one_byte() {
        let mut state = machine_with(
            &[
                I::ri(Opcode::MovI, r(1), 300),
                I::ri(Opcode::MovI, r(2), 0xAABBCCDDu32 as i32),
                I::rri(Opcode::StW, r(1), r(2), 0),
                I::ri(Opcode::MovI, r(3), 0x11),
                I::rri(Opcode::StB, r(1), r(3), 1),
                I::bare(Opcode::Halt),
            ],
            512,
        );
        run(&mut state, 100);
        assert_eq!(state.load_word(300).unwrap(), 0xAABB11DD);
    }

    #[test]
    fn conditional_branches_signed_and_unsigned() {
        // r3 counts taken signed branches, r4 counts taken unsigned branches.
        let mut state = machine_with(
            &[
                I::ri(Opcode::MovI, r(1), -1),
                I::ri(Opcode::MovI, r(2), 1),
                I::rr(Opcode::Cmp, r(1), r(2)),
                I::i(Opcode::Jlt, 5 * 8), // taken: -1 < 1 signed
                I::bare(Opcode::Halt),
                I::ri(Opcode::MovI, r(3), 1),
                I::rr(Opcode::Cmp, r(1), r(2)),
                I::i(Opcode::Jltu, 9 * 8), // not taken: 0xffffffff > 1 unsigned
                I::ri(Opcode::MovI, r(4), 1),
                I::bare(Opcode::Halt),
            ],
            512,
        );
        run(&mut state, 100);
        assert_eq!(state.reg(r(3)), 1);
        assert_eq!(state.reg(r(4)), 1);
    }

    #[test]
    fn loop_counts_down() {
        // r1 = 10; do { r2 += r1; r1 -= 1 } while (r1 != 0)
        let mut state = machine_with(
            &[
                I::ri(Opcode::MovI, r(1), 10),
                I::ri(Opcode::MovI, r(2), 0),
                I::rrr(Opcode::Add, r(2), r(2), r(1)), // addr 16
                I::rri(Opcode::AddI, r(1), r(1), -1),
                I::ri(Opcode::CmpI, r(1), 0),
                I::i(Opcode::Jne, 16),
                I::bare(Opcode::Halt),
            ],
            512,
        );
        let executed = run(&mut state, 1000);
        assert_eq!(state.reg(r(2)), 55);
        assert_eq!(executed, 2 + 4 * 10);
    }

    #[test]
    fn call_ret_push_pop() {
        // main: r1 = 5; call f; halt     f: push r1; r1 = r1 * 3; pop r2; ret
        let mut state = machine_with(
            &[
                I::ri(Opcode::MovI, r(1), 5),
                I::i(Opcode::Call, 4 * 8),
                I::bare(Opcode::Halt),
                I::bare(Opcode::Nop),
                I::r(Opcode::Push, r(1)), // addr 32
                I::rri(Opcode::MulI, r(1), r(1), 3),
                I::r(Opcode::Pop, r(2)),
                I::bare(Opcode::Ret),
            ],
            1024,
        );
        run(&mut state, 100);
        assert_eq!(state.reg(r(1)), 15);
        assert_eq!(state.reg(r(2)), 5);
        // Stack pointer restored.
        assert_eq!(state.reg(SP), 1024);
    }

    #[test]
    fn out_of_bounds_fetch_is_an_error() {
        let mut state = StateVector::new(64).unwrap();
        state.set_ip(1000);
        assert!(matches!(transition(&mut state, None), Err(VmError::MemoryOutOfBounds { .. })));
    }

    #[test]
    fn dependency_tracking_reads_and_writes() {
        let mut state = machine_with(
            &[
                I::ri(Opcode::MovI, r(1), 100),
                I::rri(Opcode::LdW, r(2), r(1), 0), // reads mem[100..104]
                I::rri(Opcode::StW, r(1), r(2), 8), // writes mem[108..112]
                I::bare(Opcode::Halt),
            ],
            512,
        );
        state.store_word(100, 7).unwrap();
        let mut deps = DepVector::new(state.len_bytes());
        for _ in 0..3 {
            transition(&mut state, Some(&mut deps)).unwrap();
        }
        let read_set = deps.read_set();
        let write_set = deps.write_set();
        // The loaded memory words are dependencies; the stored word is an output.
        for offset in 0..4 {
            assert!(read_set.contains(&(MEM_BASE + 100 + offset)));
            assert!(write_set.contains(&(MEM_BASE + 108 + offset)));
            assert!(!read_set.contains(&(MEM_BASE + 108 + offset)));
        }
        // The IP is both read and written.
        assert!(read_set.contains(&IP_OFFSET));
        assert!(write_set.contains(&IP_OFFSET));
        // Instruction bytes are dependencies.
        assert!(read_set.contains(&MEM_BASE));
        // r1 was written before ever being read, so it is *not* a dependency.
        assert!(!read_set.contains(&(REG_OFFSET + 4)));
        assert!(write_set.contains(&(REG_OFFSET + 4)));
    }

    #[test]
    fn untracked_and_tracked_execution_agree() {
        let program = [
            I::ri(Opcode::MovI, r(1), 3),
            I::ri(Opcode::MovI, r(2), 4),
            I::rrr(Opcode::Mul, r(3), r(1), r(2)),
            I::rri(Opcode::StW, r(3), r(3), 50),
            I::bare(Opcode::Halt),
        ];
        let mut plain = machine_with(&program, 256);
        let mut tracked = machine_with(&program, 256);
        let mut deps = DepVector::new(tracked.len_bytes());
        loop {
            let a = transition(&mut plain, None).unwrap();
            let b = transition(&mut tracked, Some(&mut deps)).unwrap();
            assert_eq!(a, b);
            if a == StepOutcome::Halted {
                break;
            }
        }
        assert_eq!(plain, tracked);
    }

    #[test]
    fn current_instruction_decodes_without_side_effects() {
        let state = machine_with(&[I::ri(Opcode::MovI, r(7), 9)], 64);
        let snapshot = state.clone();
        let instruction = current_instruction(&state).unwrap();
        assert_eq!(instruction, I::ri(Opcode::MovI, r(7), 9));
        assert_eq!(state, snapshot);
    }

    /// Runs a program twice — plain and with a [`DecodedCache`] — and
    /// asserts byte-identical final states and outcomes.
    fn assert_cached_execution_matches(program: &[I], mem: usize, max: usize) {
        let mut plain = machine_with(program, mem);
        let mut cached = machine_with(program, mem);
        let mut cache = DecodedCache::new(&cached);
        for _ in 0..max {
            let a = transition(&mut plain, None).unwrap();
            let b = transition_cached(&mut cached, &mut NoDeps, &mut cache).unwrap();
            assert_eq!(a, b);
            assert_eq!(plain, cached);
            if a == StepOutcome::Halted {
                return;
            }
        }
        panic!("program did not halt within {max} instructions");
    }

    #[test]
    fn decoded_cache_execution_is_identical_on_loops() {
        assert_cached_execution_matches(
            &[
                I::ri(Opcode::MovI, r(1), 10),
                I::ri(Opcode::MovI, r(2), 0),
                I::rrr(Opcode::Add, r(2), r(2), r(1)),
                I::rri(Opcode::AddI, r(1), r(1), -1),
                I::ri(Opcode::CmpI, r(1), 0),
                I::i(Opcode::Jne, 16),
                I::bare(Opcode::Halt),
            ],
            512,
            1000,
        );
    }

    #[test]
    fn decoded_cache_invalidated_by_store_into_code() {
        // Self-modifying program: overwrite the instruction at address 24
        // (initially `movi r2, 1`) with `movi r2, 99` before re-running it.
        // addr 24's first execution caches its decoded form; the store must
        // invalidate that slot or the second pass would retire stale code.
        let movi_r2_99 = crate::encode::encode(&I::ri(Opcode::MovI, r(2), 99));
        let lo = i32::from_le_bytes([movi_r2_99[0], movi_r2_99[1], movi_r2_99[2], movi_r2_99[3]]);
        let hi = i32::from_le_bytes([movi_r2_99[4], movi_r2_99[5], movi_r2_99[6], movi_r2_99[7]]);
        assert_cached_execution_matches(
            &[
                I::ri(Opcode::MovI, r(5), 24),      // 0: target address
                I::ri(Opcode::MovI, r(6), lo),      // 8
                I::ri(Opcode::MovI, r(7), hi),      // 16
                I::ri(Opcode::MovI, r(2), 1),       // 24: will be overwritten
                I::ri(Opcode::CmpI, r(2), 99),      // 32
                I::i(Opcode::Jeq, 9 * 8),           // 40: halt once patched
                I::rri(Opcode::StW, r(5), r(6), 0), // 48: patch low word
                I::rri(Opcode::StW, r(5), r(7), 4), // 56: patch high word
                I::i(Opcode::Jmp, 24),              // 64: rerun patched instr
                I::bare(Opcode::Halt),              // 72
            ],
            512,
            1000,
        );
    }

    #[test]
    fn decoded_cache_ignores_unaligned_slots() {
        let state = machine_with(&[I::bare(Opcode::Halt)], 64);
        let mut cache = DecodedCache::new(&state);
        let instruction = I::bare(Opcode::Nop);
        cache.remember(4, instruction); // unaligned: not cached
        assert_eq!(cache.cached(4), None);
        cache.remember(8, instruction);
        assert_eq!(cache.cached(8), Some(instruction));
        // Invalidation of any overlapping byte clears the slot.
        cache.invalidate(9, 1);
        assert_eq!(cache.cached(8), None);
        // Addresses whose 8-byte fetch would leave memory have no slot, so
        // they are never cached (a populated slot certifies bounds).
        cache.remember(64, instruction);
        assert_eq!(cache.cached(64), None);
    }

    #[test]
    fn tracked_and_cached_execution_agree_on_dependencies() {
        let program = [
            I::ri(Opcode::MovI, r(1), 100),
            I::rri(Opcode::LdW, r(2), r(1), 0),
            I::rri(Opcode::StW, r(1), r(2), 8),
            I::bare(Opcode::Halt),
        ];
        let mut plain = machine_with(&program, 512);
        let mut cached = machine_with(&program, 512);
        let mut deps_plain = DepVector::new(plain.len_bytes());
        let mut deps_cached = DepVector::new(cached.len_bytes());
        let mut cache = DecodedCache::new(&cached);
        loop {
            let a = transition(&mut plain, Some(&mut deps_plain)).unwrap();
            let b = transition_cached(&mut cached, &mut deps_cached, &mut cache).unwrap();
            assert_eq!(a, b);
            if a == StepOutcome::Halted {
                break;
            }
        }
        assert_eq!(plain, cached);
        // Cached decode must not change the recorded dependency footprint:
        // the fetch reads are noted even on cache hits.
        assert_eq!(deps_plain, deps_cached);
    }

    #[test]
    fn destination_register_classification() {
        assert_eq!(destination_register(&I::ri(Opcode::MovI, r(3), 1)), Some(r(3)));
        assert_eq!(destination_register(&I::bare(Opcode::Halt)), None);
        assert_eq!(destination_register(&I::i(Opcode::Jmp, 0)), None);
        assert_eq!(destination_register(&I::r(Opcode::Pop, r(2))), Some(r(2)));
    }
}
