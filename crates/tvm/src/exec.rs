//! The transition function: execute one instruction on a state vector.
//!
//! This is the paper's `transition(uint8_t *x, uint8_t *g, int n)`: it has no
//! hidden state and refers to no globals. It fetches the instruction pointed
//! to by the IP stored *inside* the state vector, simulates it, writes the
//! resulting changes back into the state vector, and (optionally) updates the
//! per-byte dependency vector `g` on every read and write it performs —
//! including the IP, flags, register file and instruction fetch itself.

use crate::deps::DepVector;
use crate::error::{VmError, VmResult};
use crate::isa::{Flags, Instruction, Opcode, Reg, INSTRUCTION_BYTES, SP};
use crate::state::{StateVector, FLAGS_OFFSET, IP_OFFSET, REG_OFFSET};
#[cfg(test)]
use crate::state::MEM_BASE;
use crate::encode::decode;

/// What happened when a single instruction executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The instruction completed and execution may continue.
    Continue,
    /// A `halt` instruction executed; the state vector is final.
    Halted,
}

/// Accessor that funnels every state-vector access through dependency
/// tracking when a dependency vector is supplied.
struct Ctx<'a> {
    state: &'a mut StateVector,
    deps: Option<&'a mut DepVector>,
}

impl<'a> Ctx<'a> {
    #[inline]
    fn note_read(&mut self, index: usize, len: usize) {
        if let Some(deps) = self.deps.as_deref_mut() {
            deps.note_read_range(index, len);
        }
    }

    #[inline]
    fn note_write(&mut self, index: usize, len: usize) {
        if let Some(deps) = self.deps.as_deref_mut() {
            deps.note_write_range(index, len);
        }
    }

    /// Reads a 32-bit word at an absolute state byte index.
    #[inline]
    fn read_word_at(&mut self, index: usize) -> u32 {
        self.note_read(index, 4);
        self.state.word(index)
    }

    /// Writes a 32-bit word at an absolute state byte index.
    #[inline]
    fn write_word_at(&mut self, index: usize, value: u32) {
        self.note_write(index, 4);
        self.state.set_word(index, value);
    }

    #[inline]
    fn read_reg(&mut self, reg: u8) -> u32 {
        self.read_word_at(REG_OFFSET + reg as usize * 4)
    }

    #[inline]
    fn write_reg(&mut self, reg: u8, value: u32) {
        self.write_word_at(REG_OFFSET + reg as usize * 4, value);
    }

    #[inline]
    fn read_ip(&mut self) -> u32 {
        self.read_word_at(IP_OFFSET)
    }

    #[inline]
    fn write_ip(&mut self, value: u32) {
        self.write_word_at(IP_OFFSET, value);
    }

    #[inline]
    fn read_flags(&mut self) -> Flags {
        Flags::from_word(self.read_word_at(FLAGS_OFFSET))
    }

    #[inline]
    fn write_flags(&mut self, flags: Flags) {
        self.write_word_at(FLAGS_OFFSET, flags.to_word());
    }

    /// Fetches the 8 instruction bytes at memory address `addr`.
    fn fetch(&mut self, addr: u32) -> VmResult<[u8; INSTRUCTION_BYTES as usize]> {
        let index = self.state.mem_index(addr, INSTRUCTION_BYTES)?;
        self.note_read(index, INSTRUCTION_BYTES as usize);
        let mut bytes = [0u8; INSTRUCTION_BYTES as usize];
        bytes.copy_from_slice(&self.state.as_bytes()[index..index + INSTRUCTION_BYTES as usize]);
        Ok(bytes)
    }

    fn load_word(&mut self, addr: u32) -> VmResult<u32> {
        let index = self.state.mem_index(addr, 4)?;
        Ok(self.read_word_at(index))
    }

    fn store_word(&mut self, addr: u32, value: u32) -> VmResult<()> {
        let index = self.state.mem_index(addr, 4)?;
        self.write_word_at(index, value);
        Ok(())
    }

    fn load_byte(&mut self, addr: u32) -> VmResult<u32> {
        let index = self.state.mem_index(addr, 1)?;
        self.note_read(index, 1);
        Ok(self.state.byte(index) as u32)
    }

    fn store_byte(&mut self, addr: u32, value: u8) -> VmResult<()> {
        let index = self.state.mem_index(addr, 1)?;
        self.note_write(index, 1);
        self.state.set_byte(index, value);
        Ok(())
    }
}

/// Executes exactly one instruction.
///
/// When `deps` is supplied, every byte read or written — IP, flags, register
/// file, instruction fetch and data memory — is recorded in the dependency
/// finite-state machine, exactly as the paper's speculative workers do. Pass
/// `None` for untracked (main-thread or ground-truth) execution.
///
/// # Errors
/// Propagates decode errors ([`VmError::InvalidOpcode`],
/// [`VmError::InvalidRegister`]), [`VmError::MemoryOutOfBounds`] for wild
/// loads/stores/fetches and [`VmError::DivideByZero`].
///
/// # Examples
/// ```
/// # use asc_tvm::{state::StateVector, exec::{transition, StepOutcome}};
/// # use asc_tvm::encode::encode_all;
/// # use asc_tvm::isa::{Instruction, Opcode, Reg};
/// let mut state = StateVector::new(256)?;
/// let image = encode_all(&[
///     Instruction::ri(Opcode::MovI, Reg::new(1).unwrap(), 21),
///     Instruction::rri(Opcode::MulI, Reg::new(1).unwrap(), Reg::new(1).unwrap(), 2),
///     Instruction::bare(Opcode::Halt),
/// ]);
/// state.write_mem(0, &image)?;
/// while transition(&mut state, None)? == StepOutcome::Continue {}
/// assert_eq!(state.reg(Reg::new(1).unwrap()), 42);
/// # Ok::<(), asc_tvm::error::VmError>(())
/// ```
pub fn transition(state: &mut StateVector, deps: Option<&mut DepVector>) -> VmResult<StepOutcome> {
    let mut ctx = Ctx { state, deps };

    let ip = ctx.read_ip();
    let raw = ctx.fetch(ip)?;
    let instruction = decode(&raw, ip)?;
    let next_ip = ip.wrapping_add(INSTRUCTION_BYTES);

    use Opcode::*;
    let outcome = match instruction.opcode {
        Halt => {
            // Leave the IP pointing at the halt instruction so a halted state
            // is a fixed point of the transition function.
            ctx.write_ip(ip);
            return Ok(StepOutcome::Halted);
        }
        Nop => {
            ctx.write_ip(next_ip);
            StepOutcome::Continue
        }
        MovI => {
            ctx.write_reg(instruction.a, instruction.imm as u32);
            ctx.write_ip(next_ip);
            StepOutcome::Continue
        }
        Mov => {
            let v = ctx.read_reg(instruction.b);
            ctx.write_reg(instruction.a, v);
            ctx.write_ip(next_ip);
            StepOutcome::Continue
        }
        Neg => {
            let v = ctx.read_reg(instruction.b);
            ctx.write_reg(instruction.a, (v as i32).wrapping_neg() as u32);
            ctx.write_ip(next_ip);
            StepOutcome::Continue
        }
        Not => {
            let v = ctx.read_reg(instruction.b);
            ctx.write_reg(instruction.a, !v);
            ctx.write_ip(next_ip);
            StepOutcome::Continue
        }
        Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | Sar => {
            let lhs = ctx.read_reg(instruction.b);
            let rhs = ctx.read_reg(instruction.c);
            let value = alu(instruction.opcode, lhs, rhs, ip)?;
            ctx.write_reg(instruction.a, value);
            ctx.write_ip(next_ip);
            StepOutcome::Continue
        }
        AddI | MulI | DivI | RemI | AndI | OrI | XorI | ShlI | ShrI | SarI => {
            let lhs = ctx.read_reg(instruction.b);
            let rhs = instruction.imm as u32;
            let op = match instruction.opcode {
                AddI => Add,
                MulI => Mul,
                DivI => Div,
                RemI => Rem,
                AndI => And,
                OrI => Or,
                XorI => Xor,
                ShlI => Shl,
                ShrI => Shr,
                SarI => Sar,
                _ => unreachable!("immediate ALU mapping"),
            };
            let value = alu(op, lhs, rhs, ip)?;
            ctx.write_reg(instruction.a, value);
            ctx.write_ip(next_ip);
            StepOutcome::Continue
        }
        LdW => {
            let base = ctx.read_reg(instruction.b);
            let addr = base.wrapping_add(instruction.imm as u32);
            let value = ctx.load_word(addr)?;
            ctx.write_reg(instruction.a, value);
            ctx.write_ip(next_ip);
            StepOutcome::Continue
        }
        LdB => {
            let base = ctx.read_reg(instruction.b);
            let addr = base.wrapping_add(instruction.imm as u32);
            let value = ctx.load_byte(addr)?;
            ctx.write_reg(instruction.a, value);
            ctx.write_ip(next_ip);
            StepOutcome::Continue
        }
        StW => {
            let base = ctx.read_reg(instruction.a);
            let value = ctx.read_reg(instruction.b);
            let addr = base.wrapping_add(instruction.imm as u32);
            ctx.store_word(addr, value)?;
            ctx.write_ip(next_ip);
            StepOutcome::Continue
        }
        StB => {
            let base = ctx.read_reg(instruction.a);
            let value = ctx.read_reg(instruction.b);
            let addr = base.wrapping_add(instruction.imm as u32);
            ctx.store_byte(addr, value as u8)?;
            ctx.write_ip(next_ip);
            StepOutcome::Continue
        }
        Cmp => {
            let lhs = ctx.read_reg(instruction.a);
            let rhs = ctx.read_reg(instruction.b);
            ctx.write_flags(Flags::compare(lhs, rhs));
            ctx.write_ip(next_ip);
            StepOutcome::Continue
        }
        CmpI => {
            let lhs = ctx.read_reg(instruction.a);
            ctx.write_flags(Flags::compare(lhs, instruction.imm as u32));
            ctx.write_ip(next_ip);
            StepOutcome::Continue
        }
        Jmp => {
            ctx.write_ip(instruction.imm as u32);
            StepOutcome::Continue
        }
        Jeq | Jne | Jlt | Jle | Jgt | Jge | Jltu | Jgeu => {
            let flags = ctx.read_flags();
            let taken = match instruction.opcode {
                Jeq => flags.eq,
                Jne => !flags.eq,
                Jlt => flags.lt_signed,
                Jle => flags.lt_signed || flags.eq,
                Jgt => !flags.lt_signed && !flags.eq,
                Jge => !flags.lt_signed,
                Jltu => flags.lt_unsigned,
                Jgeu => !flags.lt_unsigned,
                _ => unreachable!("conditional jump mapping"),
            };
            ctx.write_ip(if taken { instruction.imm as u32 } else { next_ip });
            StepOutcome::Continue
        }
        JmpR => {
            let target = ctx.read_reg(instruction.a);
            ctx.write_ip(target);
            StepOutcome::Continue
        }
        Call => {
            let sp = ctx.read_reg(SP.index() as u8).wrapping_sub(4);
            ctx.store_word(sp, next_ip)?;
            ctx.write_reg(SP.index() as u8, sp);
            ctx.write_ip(instruction.imm as u32);
            StepOutcome::Continue
        }
        Ret => {
            let sp = ctx.read_reg(SP.index() as u8);
            let target = ctx.load_word(sp)?;
            ctx.write_reg(SP.index() as u8, sp.wrapping_add(4));
            ctx.write_ip(target);
            StepOutcome::Continue
        }
        Push => {
            let value = ctx.read_reg(instruction.a);
            let sp = ctx.read_reg(SP.index() as u8).wrapping_sub(4);
            ctx.store_word(sp, value)?;
            ctx.write_reg(SP.index() as u8, sp);
            ctx.write_ip(next_ip);
            StepOutcome::Continue
        }
        Pop => {
            let sp = ctx.read_reg(SP.index() as u8);
            let value = ctx.load_word(sp)?;
            ctx.write_reg(SP.index() as u8, sp.wrapping_add(4));
            ctx.write_reg(instruction.a, value);
            ctx.write_ip(next_ip);
            StepOutcome::Continue
        }
    };
    Ok(outcome)
}

/// Three-register ALU semantics shared by the register and immediate forms.
fn alu(op: Opcode, lhs: u32, rhs: u32, addr: u32) -> VmResult<u32> {
    use Opcode::*;
    Ok(match op {
        Add => lhs.wrapping_add(rhs),
        Sub => lhs.wrapping_sub(rhs),
        Mul => lhs.wrapping_mul(rhs),
        Div => {
            if rhs == 0 {
                return Err(VmError::DivideByZero { addr });
            }
            ((lhs as i32).wrapping_div(rhs as i32)) as u32
        }
        Rem => {
            if rhs == 0 {
                return Err(VmError::DivideByZero { addr });
            }
            ((lhs as i32).wrapping_rem(rhs as i32)) as u32
        }
        And => lhs & rhs,
        Or => lhs | rhs,
        Xor => lhs ^ rhs,
        Shl => lhs.wrapping_shl(rhs & 31),
        Shr => lhs.wrapping_shr(rhs & 31),
        Sar => ((lhs as i32).wrapping_shr(rhs & 31)) as u32,
        other => unreachable!("{other} is not an ALU opcode"),
    })
}

/// Decodes (without executing) the instruction the state vector's IP points
/// at. Useful for tracing, the disassembler and the recognizer's diagnostics.
///
/// # Errors
/// Returns the same errors as instruction fetch and decode.
pub fn current_instruction(state: &StateVector) -> VmResult<Instruction> {
    let ip = state.ip();
    let index = state.mem_index(ip, INSTRUCTION_BYTES)?;
    let mut raw = [0u8; INSTRUCTION_BYTES as usize];
    raw.copy_from_slice(&state.as_bytes()[index..index + INSTRUCTION_BYTES as usize]);
    decode(&raw, ip)
}

/// Returns the register that an instruction writes, if any. Used by
/// diagnostic tooling; not needed by the execution engine itself.
pub fn destination_register(instruction: &Instruction) -> Option<Reg> {
    use Opcode::*;
    match instruction.opcode {
        MovI | Mov | Neg | Not | Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | Sar
        | AddI | MulI | DivI | RemI | AndI | OrI | XorI | ShlI | ShrI | SarI | LdW | LdB | Pop => {
            Reg::new(instruction.a)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_all;
    use crate::isa::Instruction as I;

    fn r(i: u8) -> Reg {
        Reg::new(i).unwrap()
    }

    /// Builds a state vector with the given program loaded at address 0 and
    /// the stack pointer at the top of memory.
    fn machine_with(program: &[I], mem: usize) -> StateVector {
        let mut state = StateVector::new(mem).unwrap();
        state.write_mem(0, &encode_all(program)).unwrap();
        state.set_reg(SP, mem as u32);
        state
    }

    fn run(state: &mut StateVector, max: usize) -> usize {
        let mut executed = 0;
        for _ in 0..max {
            match transition(state, None).unwrap() {
                StepOutcome::Continue => executed += 1,
                StepOutcome::Halted => return executed,
            }
        }
        panic!("program did not halt within {max} instructions");
    }

    #[test]
    fn arithmetic_and_halt() {
        let mut state = machine_with(
            &[
                I::ri(Opcode::MovI, r(1), 6),
                I::ri(Opcode::MovI, r(2), 7),
                I::rrr(Opcode::Mul, r(3), r(1), r(2)),
                I::rri(Opcode::AddI, r(3), r(3), -2),
                I::bare(Opcode::Halt),
            ],
            256,
        );
        run(&mut state, 100);
        assert_eq!(state.reg(r(3)), 40);
    }

    #[test]
    fn halted_state_is_fixed_point() {
        let mut state = machine_with(&[I::bare(Opcode::Halt)], 64);
        assert_eq!(transition(&mut state, None).unwrap(), StepOutcome::Halted);
        let snapshot = state.clone();
        assert_eq!(transition(&mut state, None).unwrap(), StepOutcome::Halted);
        assert_eq!(state, snapshot);
    }

    #[test]
    fn signed_division_and_negative_numbers() {
        let mut state = machine_with(
            &[
                I::ri(Opcode::MovI, r(1), -17),
                I::ri(Opcode::MovI, r(2), 5),
                I::rrr(Opcode::Div, r(3), r(1), r(2)),
                I::rrr(Opcode::Rem, r(4), r(1), r(2)),
                I::bare(Opcode::Halt),
            ],
            256,
        );
        run(&mut state, 100);
        assert_eq!(state.reg(r(3)) as i32, -3);
        assert_eq!(state.reg(r(4)) as i32, -2);
    }

    #[test]
    fn divide_by_zero_is_an_error() {
        let mut state = machine_with(
            &[I::ri(Opcode::MovI, r(1), 3), I::rri(Opcode::DivI, r(2), r(1), 0)],
            128,
        );
        transition(&mut state, None).unwrap();
        let err = transition(&mut state, None).unwrap_err();
        assert_eq!(err, VmError::DivideByZero { addr: 8 });
    }

    #[test]
    fn loads_and_stores_round_trip_memory() {
        let mut state = machine_with(
            &[
                I::ri(Opcode::MovI, r(1), 200),          // base address
                I::ri(Opcode::MovI, r(2), 0x1234_5678u32 as i32),
                I::rri(Opcode::StW, r(1), r(2), 4),      // mem[204] = r2
                I::rri(Opcode::LdW, r(3), r(1), 4),      // r3 = mem[204]
                I::rri(Opcode::LdB, r(4), r(1), 4),      // r4 = low byte
                I::bare(Opcode::Halt),
            ],
            512,
        );
        run(&mut state, 100);
        assert_eq!(state.reg(r(3)), 0x1234_5678);
        assert_eq!(state.reg(r(4)), 0x78);
        assert_eq!(state.load_word(204).unwrap(), 0x1234_5678);
    }

    #[test]
    fn store_byte_only_touches_one_byte() {
        let mut state = machine_with(
            &[
                I::ri(Opcode::MovI, r(1), 300),
                I::ri(Opcode::MovI, r(2), 0xAABBCCDDu32 as i32),
                I::rri(Opcode::StW, r(1), r(2), 0),
                I::ri(Opcode::MovI, r(3), 0x11),
                I::rri(Opcode::StB, r(1), r(3), 1),
                I::bare(Opcode::Halt),
            ],
            512,
        );
        run(&mut state, 100);
        assert_eq!(state.load_word(300).unwrap(), 0xAABB11DD);
    }

    #[test]
    fn conditional_branches_signed_and_unsigned() {
        // r3 counts taken signed branches, r4 counts taken unsigned branches.
        let mut state = machine_with(
            &[
                I::ri(Opcode::MovI, r(1), -1),
                I::ri(Opcode::MovI, r(2), 1),
                I::rr(Opcode::Cmp, r(1), r(2)),
                I::i(Opcode::Jlt, 5 * 8),        // taken: -1 < 1 signed
                I::bare(Opcode::Halt),
                I::ri(Opcode::MovI, r(3), 1),
                I::rr(Opcode::Cmp, r(1), r(2)),
                I::i(Opcode::Jltu, 9 * 8),       // not taken: 0xffffffff > 1 unsigned
                I::ri(Opcode::MovI, r(4), 1),
                I::bare(Opcode::Halt),
            ],
            512,
        );
        run(&mut state, 100);
        assert_eq!(state.reg(r(3)), 1);
        assert_eq!(state.reg(r(4)), 1);
    }

    #[test]
    fn loop_counts_down() {
        // r1 = 10; do { r2 += r1; r1 -= 1 } while (r1 != 0)
        let mut state = machine_with(
            &[
                I::ri(Opcode::MovI, r(1), 10),
                I::ri(Opcode::MovI, r(2), 0),
                I::rrr(Opcode::Add, r(2), r(2), r(1)), // addr 16
                I::rri(Opcode::AddI, r(1), r(1), -1),
                I::ri(Opcode::CmpI, r(1), 0),
                I::i(Opcode::Jne, 16),
                I::bare(Opcode::Halt),
            ],
            512,
        );
        let executed = run(&mut state, 1000);
        assert_eq!(state.reg(r(2)), 55);
        assert_eq!(executed, 2 + 4 * 10);
    }

    #[test]
    fn call_ret_push_pop() {
        // main: r1 = 5; call f; halt     f: push r1; r1 = r1 * 3; pop r2; ret
        let mut state = machine_with(
            &[
                I::ri(Opcode::MovI, r(1), 5),
                I::i(Opcode::Call, 4 * 8),
                I::bare(Opcode::Halt),
                I::bare(Opcode::Nop),
                I::r(Opcode::Push, r(1)),          // addr 32
                I::rri(Opcode::MulI, r(1), r(1), 3),
                I::r(Opcode::Pop, r(2)),
                I::bare(Opcode::Ret),
            ],
            1024,
        );
        run(&mut state, 100);
        assert_eq!(state.reg(r(1)), 15);
        assert_eq!(state.reg(r(2)), 5);
        // Stack pointer restored.
        assert_eq!(state.reg(SP), 1024);
    }

    #[test]
    fn out_of_bounds_fetch_is_an_error() {
        let mut state = StateVector::new(64).unwrap();
        state.set_ip(1000);
        assert!(matches!(
            transition(&mut state, None),
            Err(VmError::MemoryOutOfBounds { .. })
        ));
    }

    #[test]
    fn dependency_tracking_reads_and_writes() {
        let mut state = machine_with(
            &[
                I::ri(Opcode::MovI, r(1), 100),
                I::rri(Opcode::LdW, r(2), r(1), 0), // reads mem[100..104]
                I::rri(Opcode::StW, r(1), r(2), 8), // writes mem[108..112]
                I::bare(Opcode::Halt),
            ],
            512,
        );
        state.store_word(100, 7).unwrap();
        let mut deps = DepVector::new(state.len_bytes());
        for _ in 0..3 {
            transition(&mut state, Some(&mut deps)).unwrap();
        }
        let read_set = deps.read_set();
        let write_set = deps.write_set();
        // The loaded memory words are dependencies; the stored word is an output.
        for offset in 0..4 {
            assert!(read_set.contains(&(MEM_BASE + 100 + offset)));
            assert!(write_set.contains(&(MEM_BASE + 108 + offset)));
            assert!(!read_set.contains(&(MEM_BASE + 108 + offset)));
        }
        // The IP is both read and written.
        assert!(read_set.contains(&IP_OFFSET));
        assert!(write_set.contains(&IP_OFFSET));
        // Instruction bytes are dependencies.
        assert!(read_set.contains(&MEM_BASE));
        // r1 was written before ever being read, so it is *not* a dependency.
        assert!(!read_set.contains(&(REG_OFFSET + 4)));
        assert!(write_set.contains(&(REG_OFFSET + 4)));
    }

    #[test]
    fn untracked_and_tracked_execution_agree() {
        let program = [
            I::ri(Opcode::MovI, r(1), 3),
            I::ri(Opcode::MovI, r(2), 4),
            I::rrr(Opcode::Mul, r(3), r(1), r(2)),
            I::rri(Opcode::StW, r(3), r(3), 50),
            I::bare(Opcode::Halt),
        ];
        let mut plain = machine_with(&program, 256);
        let mut tracked = machine_with(&program, 256);
        let mut deps = DepVector::new(tracked.len_bytes());
        loop {
            let a = transition(&mut plain, None).unwrap();
            let b = transition(&mut tracked, Some(&mut deps)).unwrap();
            assert_eq!(a, b);
            if a == StepOutcome::Halted {
                break;
            }
        }
        assert_eq!(plain, tracked);
    }

    #[test]
    fn current_instruction_decodes_without_side_effects() {
        let state = machine_with(&[I::ri(Opcode::MovI, r(7), 9)], 64);
        let snapshot = state.clone();
        let instruction = current_instruction(&state).unwrap();
        assert_eq!(instruction, I::ri(Opcode::MovI, r(7), 9));
        assert_eq!(state, snapshot);
    }

    #[test]
    fn destination_register_classification() {
        assert_eq!(destination_register(&I::ri(Opcode::MovI, r(3), 1)), Some(r(3)));
        assert_eq!(destination_register(&I::bare(Opcode::Halt)), None);
        assert_eq!(destination_register(&I::i(Opcode::Jmp, 0)), None);
        assert_eq!(destination_register(&I::r(Opcode::Pop, r(2))), Some(r(2)));
    }
}
