//! Instruction set architecture of the TVM.
//!
//! The TVM is a deterministic 32-bit register machine whose complete state —
//! instruction pointer, flags, sixteen general-purpose registers and a flat
//! byte-addressed memory — lives in a single [`StateVector`](crate::state::StateVector).
//! This mirrors the role the 32-bit x86 subset plays in the ASC paper: the
//! architecture above it (recognizer, predictors, cache, allocator) never
//! inspects instruction semantics, only state vectors, so any deterministic
//! ISA with loops, calls, pointers and flags exercises the same machinery.
//!
//! Instructions are a fixed eight bytes: `[opcode, a, b, c, imm as i32 LE]`.
//! The meaning of the `a`/`b`/`c` register fields and the immediate depends on
//! the opcode and is documented on [`Opcode`].

use std::fmt;

/// Number of general-purpose registers.
pub const NUM_REGS: usize = 16;

/// Size in bytes of one encoded instruction.
pub const INSTRUCTION_BYTES: u32 = 8;

/// Register index conventionally used as the stack pointer by the assembler,
/// the mini-C compiler and the `call`/`ret`/`push`/`pop` instructions.
pub const SP: Reg = Reg(15);

/// Register index conventionally used as the frame pointer by the compiler.
pub const FP: Reg = Reg(14);

/// Register index conventionally holding function return values.
pub const RV: Reg = Reg(0);

/// A validated register index in `0..NUM_REGS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub(crate) u8);

impl Reg {
    /// Creates a register index, returning `None` when out of range.
    ///
    /// # Examples
    /// ```
    /// use asc_tvm::isa::Reg;
    /// assert!(Reg::new(3).is_some());
    /// assert!(Reg::new(16).is_none());
    /// ```
    pub fn new(index: u8) -> Option<Self> {
        if (index as usize) < NUM_REGS {
            Some(Reg(index))
        } else {
            None
        }
    }

    /// The raw index of this register.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Condition flags produced by `cmp`/`cmpi` and consumed by conditional jumps.
///
/// Stored in the 32-bit flags word of the state vector; only the low three
/// bits are meaningful. Keeping the comparison *outcome* (rather than x86's
/// carry/overflow algebra) in explicit bits is what lets the paper's logistic
/// regression predictor latch onto individual flag bits (§5.2, Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Flags {
    /// Operands compared equal.
    pub eq: bool,
    /// First operand was less than the second as signed 32-bit integers.
    pub lt_signed: bool,
    /// First operand was less than the second as unsigned 32-bit integers.
    pub lt_unsigned: bool,
}

impl Flags {
    /// Bit mask of the equality flag in the flags word.
    pub const EQ_BIT: u32 = 1 << 0;
    /// Bit mask of the signed less-than flag in the flags word.
    pub const LTS_BIT: u32 = 1 << 1;
    /// Bit mask of the unsigned less-than flag in the flags word.
    pub const LTU_BIT: u32 = 1 << 2;

    /// Computes the flags for comparing `a` against `b`.
    pub fn compare(a: u32, b: u32) -> Self {
        Flags { eq: a == b, lt_signed: (a as i32) < (b as i32), lt_unsigned: a < b }
    }

    /// Packs the flags into the low bits of a 32-bit word.
    pub fn to_word(self) -> u32 {
        ((self.eq as u32) * Self::EQ_BIT)
            | ((self.lt_signed as u32) * Self::LTS_BIT)
            | ((self.lt_unsigned as u32) * Self::LTU_BIT)
    }

    /// Unpacks flags from a 32-bit word, ignoring reserved bits.
    pub fn from_word(word: u32) -> Self {
        Flags {
            eq: word & Self::EQ_BIT != 0,
            lt_signed: word & Self::LTS_BIT != 0,
            lt_unsigned: word & Self::LTU_BIT != 0,
        }
    }
}

macro_rules! opcodes {
    ($(#[$enum_meta:meta])* $vis:vis enum $name:ident { $($(#[$meta:meta])* $variant:ident = $value:expr, $mnemonic:expr;)* }) => {
        $(#[$enum_meta])*
        $vis enum $name {
            $($(#[$meta])* $variant = $value,)*
        }

        impl $name {
            /// All opcodes in encoding order.
            pub const ALL: &'static [$name] = &[$($name::$variant,)*];

            /// Decodes an opcode from its byte encoding.
            pub fn from_byte(byte: u8) -> Option<Self> {
                match byte {
                    $($value => Some($name::$variant),)*
                    _ => None,
                }
            }

            /// The byte encoding of this opcode.
            pub fn to_byte(self) -> u8 {
                self as u8
            }

            /// The assembler mnemonic of this opcode.
            pub fn mnemonic(self) -> &'static str {
                match self {
                    $($name::$variant => $mnemonic,)*
                }
            }

            /// Looks an opcode up by assembler mnemonic (lower case).
            pub fn from_mnemonic(s: &str) -> Option<Self> {
                match s {
                    $($mnemonic => Some($name::$variant),)*
                    _ => None,
                }
            }
        }
    };
}

opcodes! {
    /// Every instruction the TVM can execute.
    ///
    /// Field usage by group (fields not listed are ignored and should be zero):
    ///
    /// | group | fields |
    /// |---|---|
    /// | `halt`, `nop`, `ret` | — |
    /// | `movi rd, imm` | `a`=rd, `imm` |
    /// | `mov/neg/not rd, rs` | `a`=rd, `b`=rs |
    /// | three-register ALU (`add` … `sar`) | `a`=rd, `b`=rs1, `c`=rs2 |
    /// | immediate ALU (`addi` … `sari`) | `a`=rd, `b`=rs1, `imm` |
    /// | `ldw/ldb rd, [rs1+imm]` | `a`=rd, `b`=rs1, `imm` |
    /// | `stw/stb [rs1+imm], rs2` | `a`=rs1 (base), `b`=rs2 (source), `imm` |
    /// | `cmp rs1, rs2` | `a`=rs1, `b`=rs2 |
    /// | `cmpi rs1, imm` | `a`=rs1, `imm` |
    /// | jumps / `call` | `imm` = absolute target address |
    /// | `jmpr rs` | `a`=rs |
    /// | `push rs` / `pop rd` | `a` |
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    #[repr(u8)]
    pub enum Opcode {
        /// Stop execution; the machine reports a halted outcome.
        Halt = 0x00, "halt";
        /// Do nothing.
        Nop = 0x01, "nop";
        /// `rd = imm`
        MovI = 0x02, "movi";
        /// `rd = rs`
        Mov = 0x03, "mov";
        /// `rd = rs1 + rs2` (wrapping)
        Add = 0x04, "add";
        /// `rd = rs1 - rs2` (wrapping)
        Sub = 0x05, "sub";
        /// `rd = rs1 * rs2` (wrapping)
        Mul = 0x06, "mul";
        /// `rd = rs1 / rs2` as signed integers; errors on division by zero.
        Div = 0x07, "div";
        /// `rd = rs1 % rs2` as signed integers; errors on division by zero.
        Rem = 0x08, "rem";
        /// `rd = rs1 & rs2`
        And = 0x09, "and";
        /// `rd = rs1 | rs2`
        Or = 0x0a, "or";
        /// `rd = rs1 ^ rs2`
        Xor = 0x0b, "xor";
        /// `rd = rs1 << (rs2 & 31)`
        Shl = 0x0c, "shl";
        /// `rd = rs1 >> (rs2 & 31)` (logical)
        Shr = 0x0d, "shr";
        /// `rd = rs1 >> (rs2 & 31)` (arithmetic)
        Sar = 0x0e, "sar";
        /// `rd = rs1 + imm` (wrapping)
        AddI = 0x0f, "addi";
        /// `rd = rs1 * imm` (wrapping)
        MulI = 0x10, "muli";
        /// `rd = rs1 / imm` signed; errors on division by zero.
        DivI = 0x11, "divi";
        /// `rd = rs1 % imm` signed; errors on division by zero.
        RemI = 0x12, "remi";
        /// `rd = rs1 & imm`
        AndI = 0x13, "andi";
        /// `rd = rs1 | imm`
        OrI = 0x14, "ori";
        /// `rd = rs1 ^ imm`
        XorI = 0x15, "xori";
        /// `rd = rs1 << (imm & 31)`
        ShlI = 0x16, "shli";
        /// `rd = rs1 >> (imm & 31)` (logical)
        ShrI = 0x17, "shri";
        /// `rd = rs1 >> (imm & 31)` (arithmetic)
        SarI = 0x18, "sari";
        /// `rd = -rs` (two's complement)
        Neg = 0x19, "neg";
        /// `rd = !rs` (bitwise)
        Not = 0x1a, "not";
        /// `rd = mem32[rs1 + imm]`
        LdW = 0x1b, "ldw";
        /// `rd = zero_extend(mem8[rs1 + imm])`
        LdB = 0x1c, "ldb";
        /// `mem32[rs1 + imm] = rs2`
        StW = 0x1d, "stw";
        /// `mem8[rs1 + imm] = low byte of rs2`
        StB = 0x1e, "stb";
        /// Set flags from comparing `rs1` with `rs2`.
        Cmp = 0x1f, "cmp";
        /// Set flags from comparing `rs1` with `imm`.
        CmpI = 0x20, "cmpi";
        /// Unconditional jump to the absolute address `imm`.
        Jmp = 0x21, "jmp";
        /// Jump when the last comparison was equal.
        Jeq = 0x22, "jeq";
        /// Jump when the last comparison was not equal.
        Jne = 0x23, "jne";
        /// Jump when signed less-than.
        Jlt = 0x24, "jlt";
        /// Jump when signed less-than or equal.
        Jle = 0x25, "jle";
        /// Jump when signed greater-than.
        Jgt = 0x26, "jgt";
        /// Jump when signed greater-than or equal.
        Jge = 0x27, "jge";
        /// Jump when unsigned less-than.
        Jltu = 0x28, "jltu";
        /// Jump when unsigned greater-than or equal.
        Jgeu = 0x29, "jgeu";
        /// Jump to the address held in register `a`.
        JmpR = 0x2a, "jmpr";
        /// Push the return address and jump to the absolute address `imm`.
        Call = 0x2b, "call";
        /// Pop the return address and jump to it.
        Ret = 0x2c, "ret";
        /// Push register `a` onto the stack (SP-relative, descending).
        Push = 0x2d, "push";
        /// Pop the top of the stack into register `a`.
        Pop = 0x2e, "pop";
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// One decoded TVM instruction.
///
/// # Examples
/// ```
/// use asc_tvm::isa::{Instruction, Opcode, Reg};
/// let add = Instruction::rrr(Opcode::Add, Reg::new(1).unwrap(), Reg::new(2).unwrap(), Reg::new(3).unwrap());
/// assert_eq!(add.opcode, Opcode::Add);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instruction {
    /// The operation to perform.
    pub opcode: Opcode,
    /// First register field (usually the destination).
    pub a: u8,
    /// Second register field (usually the first source).
    pub b: u8,
    /// Third register field (usually the second source).
    pub c: u8,
    /// Signed 32-bit immediate.
    pub imm: i32,
}

impl Instruction {
    /// An instruction with no operands (`halt`, `nop`, `ret`).
    pub fn bare(opcode: Opcode) -> Self {
        Instruction { opcode, a: 0, b: 0, c: 0, imm: 0 }
    }

    /// A three-register instruction such as `add rd, rs1, rs2`.
    pub fn rrr(opcode: Opcode, rd: Reg, rs1: Reg, rs2: Reg) -> Self {
        Instruction { opcode, a: rd.0, b: rs1.0, c: rs2.0, imm: 0 }
    }

    /// A register-register instruction such as `mov rd, rs`.
    pub fn rr(opcode: Opcode, rd: Reg, rs: Reg) -> Self {
        Instruction { opcode, a: rd.0, b: rs.0, c: 0, imm: 0 }
    }

    /// A register + immediate instruction such as `addi rd, rs1, imm`.
    pub fn rri(opcode: Opcode, rd: Reg, rs1: Reg, imm: i32) -> Self {
        Instruction { opcode, a: rd.0, b: rs1.0, c: 0, imm }
    }

    /// A single-register + immediate instruction such as `movi rd, imm` or `cmpi rs, imm`.
    pub fn ri(opcode: Opcode, r: Reg, imm: i32) -> Self {
        Instruction { opcode, a: r.0, b: 0, c: 0, imm }
    }

    /// A single-register instruction such as `push rs` or `jmpr rs`.
    pub fn r(opcode: Opcode, r: Reg) -> Self {
        Instruction { opcode, a: r.0, b: 0, c: 0, imm: 0 }
    }

    /// An immediate-only instruction such as `jmp target` or `call target`.
    pub fn i(opcode: Opcode, imm: i32) -> Self {
        Instruction { opcode, a: 0, b: 0, c: 0, imm }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Opcode::*;
        let op = self.opcode;
        match op {
            Halt | Nop | Ret => write!(f, "{op}"),
            MovI => write!(f, "{op} r{}, {}", self.a, self.imm),
            Mov | Neg | Not => write!(f, "{op} r{}, r{}", self.a, self.b),
            Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | Sar => {
                write!(f, "{op} r{}, r{}, r{}", self.a, self.b, self.c)
            }
            AddI | MulI | DivI | RemI | AndI | OrI | XorI | ShlI | ShrI | SarI => {
                write!(f, "{op} r{}, r{}, {}", self.a, self.b, self.imm)
            }
            LdW | LdB => write!(f, "{op} r{}, [r{}+{}]", self.a, self.b, self.imm),
            StW | StB => write!(f, "{op} [r{}+{}], r{}", self.a, self.imm, self.b),
            Cmp => write!(f, "{op} r{}, r{}", self.a, self.b),
            CmpI => write!(f, "{op} r{}, {}", self.a, self.imm),
            Jmp | Jeq | Jne | Jlt | Jle | Jgt | Jge | Jltu | Jgeu | Call => {
                write!(f, "{op} {}", self.imm)
            }
            JmpR | Push | Pop => write!(f, "{op} r{}", self.a),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_roundtrip_through_byte() {
        for &op in Opcode::ALL {
            assert_eq!(Opcode::from_byte(op.to_byte()), Some(op));
        }
    }

    #[test]
    fn opcode_roundtrip_through_mnemonic() {
        for &op in Opcode::ALL {
            assert_eq!(Opcode::from_mnemonic(op.mnemonic()), Some(op));
        }
        assert_eq!(Opcode::from_mnemonic("bogus"), None);
    }

    #[test]
    fn opcode_bytes_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for &op in Opcode::ALL {
            assert!(seen.insert(op.to_byte()), "duplicate encoding for {op}");
        }
    }

    #[test]
    fn unknown_opcode_byte_rejected() {
        assert_eq!(Opcode::from_byte(0xee), None);
    }

    #[test]
    fn reg_bounds() {
        assert_eq!(Reg::new(0).map(|r| r.index()), Some(0));
        assert_eq!(Reg::new(15).map(|r| r.index()), Some(15));
        assert!(Reg::new(16).is_none());
        assert_eq!(SP.index(), 15);
    }

    #[test]
    fn flags_roundtrip() {
        let all = [
            Flags::compare(1, 1),
            Flags::compare(1, 2),
            Flags::compare(2, 1),
            Flags::compare(u32::MAX, 1),
            Flags::compare(1, u32::MAX),
        ];
        for f in all {
            assert_eq!(Flags::from_word(f.to_word()), f);
        }
    }

    #[test]
    fn flags_signed_vs_unsigned() {
        // -1 (as u32::MAX) is signed-less-than 1 but unsigned-greater.
        let f = Flags::compare(u32::MAX, 1);
        assert!(f.lt_signed);
        assert!(!f.lt_unsigned);
        assert!(!f.eq);
    }

    #[test]
    fn instruction_display_mentions_operands() {
        let i = Instruction::rri(Opcode::AddI, Reg::new(2).unwrap(), Reg::new(3).unwrap(), -7);
        let text = i.to_string();
        assert!(text.contains("addi"));
        assert!(text.contains("r2"));
        assert!(text.contains("-7"));
    }
}
