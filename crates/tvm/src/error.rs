//! Error types for the trajectory-based functional simulator.

use std::fmt;

/// Errors that can occur while decoding or executing TVM instructions.
///
/// Every variant carries enough context (addresses, opcodes) to diagnose a
/// failing program without re-running it under a debugger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// The byte at the faulting address does not encode a known opcode.
    InvalidOpcode {
        /// Raw opcode byte that failed to decode.
        opcode: u8,
        /// Memory address of the instruction.
        addr: u32,
    },
    /// A load, store or instruction fetch touched memory outside the state
    /// vector.
    MemoryOutOfBounds {
        /// First byte address of the faulting access.
        addr: u32,
        /// Access width in bytes.
        len: u32,
        /// Size of the memory segment in bytes.
        mem_size: u32,
    },
    /// An integer division or remainder by zero.
    DivideByZero {
        /// Address of the faulting instruction.
        addr: u32,
    },
    /// A register index outside `0..NUM_REGS` appeared in an instruction.
    InvalidRegister {
        /// The faulting register index.
        reg: u8,
        /// Address of the faulting instruction.
        addr: u32,
    },
    /// The program exceeded the caller-supplied instruction budget.
    InstructionBudgetExceeded {
        /// The budget that was exceeded.
        budget: u64,
    },
    /// The requested state vector would be smaller than the fixed header.
    StateTooSmall {
        /// Requested total size in bytes.
        requested: usize,
        /// Minimum size in bytes.
        minimum: usize,
    },
    /// A program image did not fit into the configured memory segment.
    ProgramTooLarge {
        /// Size of the program image in bytes.
        image: usize,
        /// Size of the memory segment in bytes.
        mem_size: usize,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::InvalidOpcode { opcode, addr } => {
                write!(f, "invalid opcode {opcode:#04x} at address {addr:#x}")
            }
            VmError::MemoryOutOfBounds { addr, len, mem_size } => write!(
                f,
                "memory access of {len} bytes at {addr:#x} is outside the {mem_size}-byte segment"
            ),
            VmError::DivideByZero { addr } => {
                write!(f, "division by zero at address {addr:#x}")
            }
            VmError::InvalidRegister { reg, addr } => {
                write!(f, "invalid register r{reg} at address {addr:#x}")
            }
            VmError::InstructionBudgetExceeded { budget } => {
                write!(f, "instruction budget of {budget} exceeded")
            }
            VmError::StateTooSmall { requested, minimum } => write!(
                f,
                "state vector of {requested} bytes is smaller than the {minimum}-byte header"
            ),
            VmError::ProgramTooLarge { image, mem_size } => write!(
                f,
                "program image of {image} bytes does not fit in {mem_size} bytes of memory"
            ),
        }
    }
}

impl std::error::Error for VmError {}

/// Convenience alias used throughout the simulator.
pub type VmResult<T> = Result<T, VmError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = VmError::InvalidOpcode { opcode: 0xff, addr: 0x40 };
        let text = err.to_string();
        assert!(text.contains("0xff"));
        assert!(text.contains("0x40"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(VmError::DivideByZero { addr: 8 }, VmError::DivideByZero { addr: 8 });
        assert_ne!(VmError::DivideByZero { addr: 8 }, VmError::DivideByZero { addr: 16 });
    }

    #[test]
    fn error_trait_object() {
        let err: Box<dyn std::error::Error> =
            Box::new(VmError::InstructionBudgetExceeded { budget: 10 });
        assert!(err.to_string().contains("10"));
    }
}
