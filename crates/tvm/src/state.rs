//! The state vector: the complete, flat representation of machine state.
//!
//! A [`StateVector`] is the paper's `x`: a byte array containing *all*
//! information needed to deterministically compute the next state — the
//! instruction pointer, the flags word, the sixteen general-purpose registers
//! and the program's memory (code, globals, heap and stack). Program
//! execution is a walk through the space of these vectors; the ASC
//! architecture operates purely on them.

use crate::error::{VmError, VmResult};
use crate::isa::{Flags, Reg, NUM_REGS};

/// Byte offset of the 32-bit instruction pointer within the state vector.
pub const IP_OFFSET: usize = 0;
/// Byte offset of the 32-bit flags word.
pub const FLAGS_OFFSET: usize = 4;
/// Byte offset of the first general-purpose register.
pub const REG_OFFSET: usize = 8;
/// Total size of the architectural header (IP + flags + registers).
pub const HEADER_BYTES: usize = REG_OFFSET + NUM_REGS * 4;
/// Byte offset at which program-visible memory begins.
pub const MEM_BASE: usize = HEADER_BYTES;

/// The complete state of a TVM computation as one flat byte vector.
///
/// Addresses used by programs (`ip`, load/store addresses, the stack pointer)
/// are offsets into the *memory segment*, i.e. state byte `MEM_BASE + addr`.
///
/// # Examples
/// ```
/// use asc_tvm::state::StateVector;
/// let mut s = StateVector::new(1024).unwrap();
/// s.set_reg_index(3, 42);
/// assert_eq!(s.reg_index(3), 42);
/// assert_eq!(s.len_bits(), (asc_tvm::state::HEADER_BYTES + 1024) * 8);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct StateVector {
    bytes: Vec<u8>,
}

impl StateVector {
    /// Creates a zeroed state vector with `mem_size` bytes of program memory.
    ///
    /// # Errors
    /// Returns [`VmError::StateTooSmall`] when `mem_size` is zero.
    pub fn new(mem_size: usize) -> VmResult<Self> {
        if mem_size == 0 {
            return Err(VmError::StateTooSmall {
                requested: HEADER_BYTES,
                minimum: HEADER_BYTES + 1,
            });
        }
        Ok(StateVector { bytes: vec![0u8; HEADER_BYTES + mem_size] })
    }

    /// Reconstructs a state vector from raw bytes (header + memory).
    ///
    /// # Errors
    /// Returns [`VmError::StateTooSmall`] when fewer than `HEADER_BYTES + 1`
    /// bytes are supplied.
    pub fn from_bytes(bytes: Vec<u8>) -> VmResult<Self> {
        if bytes.len() <= HEADER_BYTES {
            return Err(VmError::StateTooSmall {
                requested: bytes.len(),
                minimum: HEADER_BYTES + 1,
            });
        }
        Ok(StateVector { bytes })
    }

    /// Total length of the state vector in bytes.
    pub fn len_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Total length of the state vector in bits (the paper's `n`).
    pub fn len_bits(&self) -> usize {
        self.bytes.len() * 8
    }

    /// Size of the program-visible memory segment in bytes.
    pub fn mem_size(&self) -> usize {
        self.bytes.len() - HEADER_BYTES
    }

    /// A read-only view of the raw state bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// A mutable view of the raw state bytes.
    ///
    /// Prefer the typed accessors; this exists for the speculation and cache
    /// machinery which patches individual bytes by index.
    pub fn as_bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    /// Reads one raw state byte by absolute index.
    ///
    /// # Panics
    /// Panics when `index` is out of bounds; callers are expected to hold
    /// indices obtained from this state vector or its dependency vector.
    pub fn byte(&self, index: usize) -> u8 {
        self.bytes[index]
    }

    /// Writes one raw state byte by absolute index.
    ///
    /// # Panics
    /// Panics when `index` is out of bounds.
    pub fn set_byte(&mut self, index: usize, value: u8) {
        self.bytes[index] = value;
    }

    /// Reads the bit at absolute bit index `bit` (LSB-first within a byte).
    pub fn bit(&self, bit: usize) -> bool {
        (self.bytes[bit / 8] >> (bit % 8)) & 1 == 1
    }

    /// Writes the bit at absolute bit index `bit`.
    pub fn set_bit(&mut self, bit: usize, value: bool) {
        let byte = &mut self.bytes[bit / 8];
        if value {
            *byte |= 1 << (bit % 8);
        } else {
            *byte &= !(1 << (bit % 8));
        }
    }

    /// Reads a little-endian 32-bit word at absolute byte index `index`.
    #[inline]
    pub fn word(&self, index: usize) -> u32 {
        let bytes: [u8; 4] = self.bytes[index..index + 4].try_into().expect("word read in bounds");
        u32::from_le_bytes(bytes)
    }

    /// Writes a little-endian 32-bit word at absolute byte index `index`.
    #[inline]
    pub fn set_word(&mut self, index: usize, value: u32) {
        self.bytes[index..index + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// The current instruction pointer (a memory-segment address).
    pub fn ip(&self) -> u32 {
        self.word(IP_OFFSET)
    }

    /// Sets the instruction pointer.
    pub fn set_ip(&mut self, ip: u32) {
        self.set_word(IP_OFFSET, ip);
    }

    /// The current condition flags.
    pub fn flags(&self) -> Flags {
        Flags::from_word(self.word(FLAGS_OFFSET))
    }

    /// Sets the condition flags.
    pub fn set_flags(&mut self, flags: Flags) {
        self.set_word(FLAGS_OFFSET, flags.to_word());
    }

    /// Reads general-purpose register `r`.
    pub fn reg(&self, r: Reg) -> u32 {
        self.word(REG_OFFSET + r.index() * 4)
    }

    /// Writes general-purpose register `r`.
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        self.set_word(REG_OFFSET + r.index() * 4, value);
    }

    /// Reads register `index`, panicking when out of range.
    ///
    /// # Panics
    /// Panics when `index >= NUM_REGS`.
    pub fn reg_index(&self, index: usize) -> u32 {
        assert!(index < NUM_REGS, "register index {index} out of range");
        self.word(REG_OFFSET + index * 4)
    }

    /// Writes register `index`, panicking when out of range.
    ///
    /// # Panics
    /// Panics when `index >= NUM_REGS`.
    pub fn set_reg_index(&mut self, index: usize, value: u32) {
        assert!(index < NUM_REGS, "register index {index} out of range");
        self.set_word(REG_OFFSET + index * 4, value);
    }

    /// Translates a memory-segment address to an absolute state byte index.
    ///
    /// # Errors
    /// Returns [`VmError::MemoryOutOfBounds`] when `addr..addr+len` does not
    /// lie inside the memory segment.
    pub fn mem_index(&self, addr: u32, len: u32) -> VmResult<usize> {
        let mem_size = self.mem_size() as u64;
        let end = addr as u64 + len as u64;
        if end > mem_size {
            return Err(VmError::MemoryOutOfBounds { addr, len, mem_size: mem_size as u32 });
        }
        Ok(MEM_BASE + addr as usize)
    }

    /// Reads a 32-bit little-endian word from memory-segment address `addr`.
    ///
    /// # Errors
    /// Returns [`VmError::MemoryOutOfBounds`] on an out-of-range access.
    pub fn load_word(&self, addr: u32) -> VmResult<u32> {
        let index = self.mem_index(addr, 4)?;
        Ok(self.word(index))
    }

    /// Writes a 32-bit little-endian word to memory-segment address `addr`.
    ///
    /// # Errors
    /// Returns [`VmError::MemoryOutOfBounds`] on an out-of-range access.
    pub fn store_word(&mut self, addr: u32, value: u32) -> VmResult<()> {
        let index = self.mem_index(addr, 4)?;
        self.set_word(index, value);
        Ok(())
    }

    /// Reads a byte from memory-segment address `addr`.
    ///
    /// # Errors
    /// Returns [`VmError::MemoryOutOfBounds`] on an out-of-range access.
    pub fn load_byte(&self, addr: u32) -> VmResult<u8> {
        let index = self.mem_index(addr, 1)?;
        Ok(self.byte(index))
    }

    /// Writes a byte to memory-segment address `addr`.
    ///
    /// # Errors
    /// Returns [`VmError::MemoryOutOfBounds`] on an out-of-range access.
    pub fn store_byte(&mut self, addr: u32, value: u8) -> VmResult<()> {
        let index = self.mem_index(addr, 1)?;
        self.set_byte(index, value);
        Ok(())
    }

    /// Copies `data` into memory starting at memory-segment address `addr`.
    ///
    /// # Errors
    /// Returns [`VmError::MemoryOutOfBounds`] when the copy does not fit.
    pub fn write_mem(&mut self, addr: u32, data: &[u8]) -> VmResult<()> {
        let index = self.mem_index(addr, data.len() as u32)?;
        self.bytes[index..index + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Reads `len` bytes of memory starting at memory-segment address `addr`.
    ///
    /// # Errors
    /// Returns [`VmError::MemoryOutOfBounds`] when the range is out of bounds.
    pub fn read_mem(&self, addr: u32, len: usize) -> VmResult<&[u8]> {
        let index = self.mem_index(addr, len as u32)?;
        Ok(&self.bytes[index..index + len])
    }

    /// Indices (absolute byte indices) at which `self` and `other` differ.
    ///
    /// Both vectors must have the same length; differing lengths are treated
    /// as if the shorter one were truncated (callers compare states of the
    /// same machine, so lengths normally agree).
    pub fn diff_bytes(&self, other: &StateVector) -> Vec<usize> {
        self.bytes
            .iter()
            .zip(other.bytes.iter())
            .enumerate()
            .filter_map(|(i, (a, b))| if a != b { Some(i) } else { None })
            .collect()
    }
}

impl std::fmt::Debug for StateVector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StateVector")
            .field("ip", &self.ip())
            .field("flags", &self.flags())
            .field("regs", &(0..NUM_REGS).map(|i| self.reg_index(i)).collect::<Vec<_>>())
            .field("mem_size", &self.mem_size())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::SP;

    #[test]
    fn new_rejects_zero_memory() {
        assert!(StateVector::new(0).is_err());
        assert!(StateVector::new(1).is_ok());
    }

    #[test]
    fn register_read_write_roundtrip() {
        let mut s = StateVector::new(64).unwrap();
        for i in 0..NUM_REGS {
            s.set_reg_index(i, (i as u32) * 0x01010101);
        }
        for i in 0..NUM_REGS {
            assert_eq!(s.reg_index(i), (i as u32) * 0x01010101);
        }
        s.set_reg(SP, 0xdead_beef);
        assert_eq!(s.reg(SP), 0xdead_beef);
    }

    #[test]
    fn ip_and_flags_live_in_header() {
        let mut s = StateVector::new(16).unwrap();
        s.set_ip(0x1234);
        s.set_flags(Flags { eq: true, lt_signed: false, lt_unsigned: true });
        assert_eq!(s.ip(), 0x1234);
        assert_eq!(s.flags(), Flags { eq: true, lt_signed: false, lt_unsigned: true });
        // The header does not overlap memory.
        assert_eq!(s.load_word(0).unwrap(), 0);
    }

    #[test]
    fn memory_bounds_checked() {
        let mut s = StateVector::new(8).unwrap();
        assert!(s.store_word(4, 7).is_ok());
        assert!(s.store_word(5, 7).is_err());
        assert!(s.load_byte(7).is_ok());
        assert!(s.load_byte(8).is_err());
        let err = s.load_word(u32::MAX).unwrap_err();
        assert!(matches!(err, VmError::MemoryOutOfBounds { .. }));
    }

    #[test]
    fn word_little_endian() {
        let mut s = StateVector::new(8).unwrap();
        s.store_word(0, 0x0403_0201).unwrap();
        assert_eq!(s.load_byte(0).unwrap(), 1);
        assert_eq!(s.load_byte(3).unwrap(), 4);
    }

    #[test]
    fn bit_accessors() {
        let mut s = StateVector::new(8).unwrap();
        let bit = (MEM_BASE + 2) * 8 + 5;
        assert!(!s.bit(bit));
        s.set_bit(bit, true);
        assert!(s.bit(bit));
        assert_eq!(s.load_byte(2).unwrap(), 1 << 5);
        s.set_bit(bit, false);
        assert!(!s.bit(bit));
    }

    #[test]
    fn diff_bytes_reports_changes() {
        let mut a = StateVector::new(32).unwrap();
        let b = a.clone();
        assert!(a.diff_bytes(&b).is_empty());
        a.set_reg_index(1, 5);
        a.store_byte(10, 9).unwrap();
        let diff = a.diff_bytes(&b);
        assert!(diff.contains(&(REG_OFFSET + 4)));
        assert!(diff.contains(&(MEM_BASE + 10)));
        assert_eq!(diff.len(), 2);
    }

    #[test]
    fn from_bytes_roundtrip() {
        let mut s = StateVector::new(16).unwrap();
        s.set_ip(99);
        let raw = s.as_bytes().to_vec();
        let restored = StateVector::from_bytes(raw).unwrap();
        assert_eq!(restored, s);
        assert!(StateVector::from_bytes(vec![0u8; HEADER_BYTES]).is_err());
    }
}
