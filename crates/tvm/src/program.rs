//! Loadable program images.
//!
//! A [`Program`] is the output of the assembler (or of the mini-C compiler,
//! which lowers through the assembler): a flat code image, initialised data
//! segments, an entry point and a recommended memory size. It plays the role
//! of the freestanding static binaries the paper runs on its simulator.

use crate::error::{VmError, VmResult};
use crate::isa::{INSTRUCTION_BYTES, SP};
use crate::state::StateVector;
use std::collections::BTreeMap;

/// A relocatable-free, fully linked TVM program image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Machine code, loaded at memory address 0.
    code: Vec<u8>,
    /// Initialised data segments: memory address → bytes.
    data: BTreeMap<u32, Vec<u8>>,
    /// Address of the first instruction to execute.
    entry: u32,
    /// Memory segment size the program expects (code + data + heap + stack).
    mem_size: usize,
    /// Exported symbols (label → address) for tests and experiment harnesses.
    symbols: BTreeMap<String, u32>,
    /// Number of source lines this image was produced from (the paper's
    /// "lines of C code" column in Table 1).
    source_lines: usize,
}

impl Program {
    /// Creates a program from a code image.
    ///
    /// The program is loaded at address 0 and `mem_size` bytes of memory are
    /// reserved overall (code, data, heap and a descending stack).
    ///
    /// # Errors
    /// Returns [`VmError::ProgramTooLarge`] when the code image alone exceeds
    /// `mem_size`.
    pub fn new(code: Vec<u8>, entry: u32, mem_size: usize) -> VmResult<Self> {
        if code.len() > mem_size {
            return Err(VmError::ProgramTooLarge { image: code.len(), mem_size });
        }
        Ok(Program {
            code,
            data: BTreeMap::new(),
            entry,
            mem_size,
            symbols: BTreeMap::new(),
            source_lines: 0,
        })
    }

    /// Adds an initialised data segment at `addr`.
    ///
    /// # Errors
    /// Returns [`VmError::ProgramTooLarge`] when the segment does not fit in
    /// the program's memory.
    pub fn with_data(mut self, addr: u32, bytes: Vec<u8>) -> VmResult<Self> {
        let end = addr as usize + bytes.len();
        if end > self.mem_size {
            return Err(VmError::ProgramTooLarge { image: end, mem_size: self.mem_size });
        }
        self.data.insert(addr, bytes);
        Ok(self)
    }

    /// Records an exported symbol.
    pub fn with_symbol(mut self, name: impl Into<String>, addr: u32) -> Self {
        self.symbols.insert(name.into(), addr);
        self
    }

    /// Records how many source lines produced this image.
    pub fn with_source_lines(mut self, lines: usize) -> Self {
        self.source_lines = lines;
        self
    }

    /// The raw code image.
    pub fn code(&self) -> &[u8] {
        &self.code
    }

    /// Number of encoded instructions in the code image.
    pub fn instruction_count(&self) -> usize {
        self.code.len() / INSTRUCTION_BYTES as usize
    }

    /// The entry point address.
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// The memory size this program expects.
    pub fn mem_size(&self) -> usize {
        self.mem_size
    }

    /// Number of source lines recorded for this image (0 when unknown).
    pub fn source_lines(&self) -> usize {
        self.source_lines
    }

    /// Looks up an exported symbol.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// All exported symbols in address order of insertion name order.
    pub fn symbols(&self) -> impl Iterator<Item = (&str, u32)> {
        self.symbols.iter().map(|(name, addr)| (name.as_str(), *addr))
    }

    /// Materialises the initial state vector for this program: code and data
    /// loaded, IP at the entry point and the stack pointer at the top of
    /// memory.
    ///
    /// # Errors
    /// Returns [`VmError::MemoryOutOfBounds`] if a data segment lies outside
    /// memory (only possible when segments were constructed inconsistently).
    pub fn initial_state(&self) -> VmResult<StateVector> {
        let mut state = StateVector::new(self.mem_size)?;
        state.write_mem(0, &self.code)?;
        for (addr, bytes) in &self.data {
            state.write_mem(*addr, bytes)?;
        }
        state.set_ip(self.entry);
        state.set_reg(SP, self.mem_size as u32);
        Ok(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_all;
    use crate::isa::{Instruction, Opcode, Reg};

    #[test]
    fn initial_state_has_code_data_entry_and_stack() {
        let code = encode_all(&[Instruction::bare(Opcode::Halt)]);
        let program = Program::new(code.clone(), 0, 1024)
            .unwrap()
            .with_data(512, vec![1, 2, 3, 4])
            .unwrap()
            .with_symbol("blob", 512)
            .with_source_lines(3);
        let state = program.initial_state().unwrap();
        assert_eq!(state.read_mem(0, code.len()).unwrap(), &code[..]);
        assert_eq!(state.read_mem(512, 4).unwrap(), &[1, 2, 3, 4]);
        assert_eq!(state.ip(), 0);
        assert_eq!(state.reg(Reg::new(15).unwrap()), 1024);
        assert_eq!(program.symbol("blob"), Some(512));
        assert_eq!(program.symbol("missing"), None);
        assert_eq!(program.source_lines(), 3);
        assert_eq!(program.instruction_count(), 1);
    }

    #[test]
    fn oversized_program_rejected() {
        let code = vec![0u8; 128];
        assert!(matches!(Program::new(code, 0, 64), Err(VmError::ProgramTooLarge { .. })));
    }

    #[test]
    fn oversized_data_rejected() {
        let program = Program::new(vec![0u8; 8], 0, 64).unwrap();
        assert!(program.with_data(60, vec![0u8; 8]).is_err());
    }
}
