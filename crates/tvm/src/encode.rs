//! Binary encoding and decoding of TVM instructions.
//!
//! Instructions are a fixed [`INSTRUCTION_BYTES`]-byte record:
//! `[opcode, a, b, c, imm as little-endian i32]`. A fixed width keeps the
//! instruction fetch dependency footprint uniform and makes the instruction
//! pointer arithmetic in the recognizer and cache trivially predictable.

use crate::error::{VmError, VmResult};
use crate::isa::{Instruction, Opcode, INSTRUCTION_BYTES, NUM_REGS};

/// Encodes one instruction into its 8-byte representation.
///
/// # Examples
/// ```
/// use asc_tvm::encode::{encode, decode};
/// use asc_tvm::isa::{Instruction, Opcode, Reg};
/// let i = Instruction::rri(Opcode::AddI, Reg::new(1).unwrap(), Reg::new(2).unwrap(), -5);
/// let bytes = encode(&i);
/// assert_eq!(decode(&bytes, 0).unwrap(), i);
/// ```
pub fn encode(instruction: &Instruction) -> [u8; INSTRUCTION_BYTES as usize] {
    let mut out = [0u8; INSTRUCTION_BYTES as usize];
    out[0] = instruction.opcode.to_byte();
    out[1] = instruction.a;
    out[2] = instruction.b;
    out[3] = instruction.c;
    out[4..8].copy_from_slice(&instruction.imm.to_le_bytes());
    out
}

/// Encodes a sequence of instructions into a flat code image.
pub fn encode_all(instructions: &[Instruction]) -> Vec<u8> {
    let mut out = Vec::with_capacity(instructions.len() * INSTRUCTION_BYTES as usize);
    for i in instructions {
        out.extend_from_slice(&encode(i));
    }
    out
}

/// Decodes the instruction stored in `bytes`.
///
/// `addr` is only used to produce a useful error message.
///
/// # Errors
/// Returns [`VmError::InvalidOpcode`] for an unknown opcode byte and
/// [`VmError::InvalidRegister`] when a register field used by that opcode is
/// out of range.
pub fn decode(bytes: &[u8; INSTRUCTION_BYTES as usize], addr: u32) -> VmResult<Instruction> {
    let opcode =
        Opcode::from_byte(bytes[0]).ok_or(VmError::InvalidOpcode { opcode: bytes[0], addr })?;
    let instruction = Instruction {
        opcode,
        a: bytes[1],
        b: bytes[2],
        c: bytes[3],
        imm: i32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]),
    };
    validate_registers(&instruction, addr)?;
    Ok(instruction)
}

/// Checks that every register field the opcode actually uses is in range.
fn validate_registers(instruction: &Instruction, addr: u32) -> VmResult<()> {
    use Opcode::*;
    let check = |reg: u8| -> VmResult<()> {
        if (reg as usize) < NUM_REGS {
            Ok(())
        } else {
            Err(VmError::InvalidRegister { reg, addr })
        }
    };
    match instruction.opcode {
        Halt | Nop | Ret | Jmp | Jeq | Jne | Jlt | Jle | Jgt | Jge | Jltu | Jgeu | Call => Ok(()),
        MovI | CmpI | JmpR | Push | Pop => check(instruction.a),
        Mov | Neg | Not | Cmp | LdW | LdB | StW | StB | AddI | MulI | DivI | RemI | AndI | OrI
        | XorI | ShlI | ShrI | SarI => {
            check(instruction.a)?;
            check(instruction.b)
        }
        Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | Sar => {
            check(instruction.a)?;
            check(instruction.b)?;
            check(instruction.c)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Reg;

    fn r(i: u8) -> Reg {
        Reg::new(i).unwrap()
    }

    #[test]
    fn roundtrip_every_opcode() {
        for &op in Opcode::ALL {
            let instruction = Instruction { opcode: op, a: 1, b: 2, c: 3, imm: -123456 };
            let decoded = decode(&encode(&instruction), 0).unwrap();
            assert_eq!(decoded, instruction, "roundtrip failed for {op}");
        }
    }

    #[test]
    fn invalid_opcode_detected() {
        let bytes = [0xfe, 0, 0, 0, 0, 0, 0, 0];
        let err = decode(&bytes, 0x80).unwrap_err();
        assert_eq!(err, VmError::InvalidOpcode { opcode: 0xfe, addr: 0x80 });
    }

    #[test]
    fn invalid_register_detected_only_when_used() {
        // `jmp` ignores register fields entirely, so junk there is fine.
        let jmp = Instruction { opcode: Opcode::Jmp, a: 200, b: 200, c: 200, imm: 8 };
        assert!(decode(&encode(&jmp), 0).is_ok());
        // `add` uses all three fields.
        let add = Instruction { opcode: Opcode::Add, a: 1, b: 16, c: 0, imm: 0 };
        let err = decode(&encode(&add), 16).unwrap_err();
        assert_eq!(err, VmError::InvalidRegister { reg: 16, addr: 16 });
    }

    #[test]
    fn encode_all_concatenates() {
        let program = vec![Instruction::ri(Opcode::MovI, r(1), 7), Instruction::bare(Opcode::Halt)];
        let image = encode_all(&program);
        assert_eq!(image.len(), 16);
        assert_eq!(image[0], Opcode::MovI.to_byte());
        assert_eq!(image[8], Opcode::Halt.to_byte());
    }

    #[test]
    fn negative_immediates_roundtrip() {
        let i = Instruction::ri(Opcode::MovI, r(0), i32::MIN);
        assert_eq!(decode(&encode(&i), 0).unwrap().imm, i32::MIN);
    }
}
