//! # asc-tvm — the trajectory-based functional simulator
//!
//! This crate is the execution substrate of the ASC reproduction: a
//! deterministic 32-bit register machine (the **TVM**) whose entire state —
//! instruction pointer, flags, register file and memory — lives in a single
//! flat [`state::StateVector`]. Executing one instruction is a pure function
//! from state vector to state vector ([`exec::transition`]); executing a
//! program traces a *trajectory* through state space, which is exactly the
//! model of computation the paper builds ASC on (§3.1).
//!
//! It provides:
//!
//! * the instruction set ([`isa`]) and its binary encoding ([`encode`]),
//! * state vectors ([`state`]) and per-byte dependency tracking ([`deps`])
//!   with the paper's `null / read / written / written-after-read` FSM,
//! * the transition function and a machine driver ([`exec`], [`machine`]),
//! * tier-1 execution: superinstruction fusion and block-threaded dispatch
//!   of hot straight-line regions ([`tier`]),
//! * program images and loading ([`program`]),
//! * sparse state captures and binary deltas ([`delta`]) used by the
//!   trajectory cache and the communication-cost model.
//!
//! ## Quick example
//!
//! ```
//! use asc_tvm::encode::encode_all;
//! use asc_tvm::isa::{Instruction, Opcode, Reg};
//! use asc_tvm::machine::Machine;
//! use asc_tvm::program::Program;
//!
//! # fn main() -> Result<(), asc_tvm::error::VmError> {
//! let r1 = Reg::new(1).unwrap();
//! let code = encode_all(&[
//!     Instruction::ri(Opcode::MovI, r1, 20),
//!     Instruction::rri(Opcode::MulI, r1, r1, 2),
//!     Instruction::rri(Opcode::AddI, r1, r1, 2),
//!     Instruction::bare(Opcode::Halt),
//! ]);
//! let program = Program::new(code, 0, 4096)?;
//! let mut machine = Machine::load(&program)?;
//! machine.run_to_halt(100)?;
//! assert_eq!(machine.reg(r1), 42);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delta;
pub mod deps;
pub mod encode;
pub mod error;
pub mod exec;
pub mod isa;
pub mod machine;
pub mod program;
pub mod state;
pub mod tier;

pub use deps::{DepStatus, DepVector};
pub use error::{VmError, VmResult};
pub use exec::{
    transition, transition_cached, transition_with, DecodeCache, DecodedCache, DepSink,
    NoDecodeCache, NoDeps, StepOutcome,
};
pub use isa::{Flags, Instruction, Opcode, Reg};
pub use machine::{Machine, RunExit};
pub use program::Program;
pub use state::StateVector;
pub use tier::{BlockCache, SegmentExit, TierConfig, TierStats};
