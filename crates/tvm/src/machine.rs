//! The trajectory-based functional simulator (TBFS) driver.
//!
//! [`Machine`] wraps a [`StateVector`] plus an optional [`DepVector`] and
//! drives repeated calls to the [`transition`] function, counting retired
//! instructions and enforcing instruction budgets. It corresponds to the
//! "main thread" and "speculative thread" execution loops of the paper's
//! prototype; the ASC runtime builds on it but higher layers can also use it
//! directly to run TVM programs to completion.

use crate::delta::SparseBytes;
use crate::deps::DepVector;
use crate::error::{VmError, VmResult};
use crate::exec::{transition_cached, DecodeCache, NoDeps, StepOutcome};
use crate::isa::Reg;
use crate::program::Program;
use crate::state::StateVector;
use crate::tier::{run_segment, BlockCache, SegmentExit, TierConfig, TierStats};

/// Stop address used by [`Machine::run`]'s tiered path: programs cannot
/// fetch from an unaligned address, so landing here faults on the next
/// dispatch exactly as the untiered loop would.
const UNREACHABLE_STOP_IP: u32 = u32::MAX;

/// Why a [`Machine::run`] call stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunExit {
    /// The program executed a `halt` instruction.
    Halted,
    /// The instruction budget was exhausted before the program halted.
    BudgetExhausted,
}

/// A functional simulator instance: one state vector plus bookkeeping.
///
/// # Examples
/// ```
/// use asc_tvm::machine::Machine;
/// use asc_tvm::program::Program;
/// use asc_tvm::encode::encode_all;
/// use asc_tvm::isa::{Instruction, Opcode, Reg};
///
/// # fn main() -> Result<(), asc_tvm::error::VmError> {
/// let code = encode_all(&[
///     Instruction::ri(Opcode::MovI, Reg::new(1).unwrap(), 41),
///     Instruction::rri(Opcode::AddI, Reg::new(1).unwrap(), Reg::new(1).unwrap(), 1),
///     Instruction::bare(Opcode::Halt),
/// ]);
/// let program = Program::new(code, 0, 4096)?;
/// let mut machine = Machine::load(&program)?;
/// machine.run(1_000)?;
/// assert_eq!(machine.state().reg(Reg::new(1).unwrap()), 42);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    state: StateVector,
    deps: Option<DepVector>,
    /// Two-tier execution cache: decoded-instruction slots (tier-0) plus
    /// compiled blocks of fused micro-ops (tier-1, off by default). Kept
    /// coherent by store invalidation inside the transition function and
    /// cleared whenever state bytes are patched from outside it.
    icache: BlockCache,
    instret: u64,
    halted: bool,
}

impl Machine {
    /// Creates a machine from an explicit initial state. Tier-1 execution
    /// starts disabled; see [`Machine::enable_tier`].
    pub fn from_state(state: StateVector) -> Self {
        let icache = BlockCache::new(&state, TierConfig::disabled());
        Machine { state, deps: None, icache, instret: 0, halted: false }
    }

    /// Enables (or reconfigures) tier-1 execution: hot straight-line regions
    /// are compiled into blocks of fused micro-ops and run by the
    /// block-threaded dispatch loop in [`crate::tier`]. Results are
    /// bit-identical to tier-0 execution; only the retirement rate changes.
    /// Discards any previously compiled blocks and tier statistics.
    pub fn enable_tier(&mut self, config: TierConfig) {
        self.icache = BlockCache::new(&self.state, config);
    }

    /// Marks an entry IP as already hot, so its region compiles on first
    /// arrival. The runtime seeds the recognized occurrence IP here — the
    /// recognizer surfaces hot IPs for free. No-op while the tier is off.
    pub fn seed_hot(&mut self, ip: u32) {
        self.icache.seed_hot(ip);
    }

    /// A snapshot of the tier-1 execution counters.
    pub fn tier_stats(&self) -> TierStats {
        self.icache.stats()
    }

    /// Loads a program image into a fresh machine.
    ///
    /// # Errors
    /// Propagates errors from materialising the program's initial state.
    pub fn load(program: &Program) -> VmResult<Self> {
        Ok(Machine::from_state(program.initial_state()?))
    }

    /// Enables per-byte dependency tracking (the paper's `g` vector).
    ///
    /// Tracking starts from an all-`null` vector; call again to reset.
    pub fn enable_dep_tracking(&mut self) {
        self.deps = Some(DepVector::new(self.state.len_bytes()));
    }

    /// Disables dependency tracking and returns the vector accumulated so far.
    pub fn take_deps(&mut self) -> Option<DepVector> {
        self.deps.take()
    }

    /// The accumulated dependency vector, when tracking is enabled.
    pub fn deps(&self) -> Option<&DepVector> {
        self.deps.as_ref()
    }

    /// The current state vector.
    pub fn state(&self) -> &StateVector {
        &self.state
    }

    /// Mutable access to the state vector (used by the cache to fast-forward).
    ///
    /// Conservatively clears the decoded-instruction cache, since the caller
    /// may overwrite code bytes; prefer [`Machine::apply_sparse`] for
    /// fast-forwards, which invalidates only the touched slots.
    pub fn state_mut(&mut self) -> &mut StateVector {
        self.icache.clear();
        &mut self.state
    }

    /// Applies a sparse byte patch (a trajectory-cache fast-forward) to the
    /// state, invalidating exactly the decoded-instruction slots the patch
    /// touches.
    pub fn apply_sparse(&mut self, patch: &SparseBytes) {
        for (index, _) in patch.iter() {
            if let Some(addr) = (index as usize).checked_sub(crate::state::MEM_BASE) {
                self.icache.invalidate(addr as u32, 1);
            }
        }
        patch.apply(&mut self.state);
    }

    /// Consumes the machine and returns its state vector.
    pub fn into_state(self) -> StateVector {
        self.state
    }

    /// Number of instructions retired so far.
    pub fn instret(&self) -> u64 {
        self.instret
    }

    /// Whether the machine has executed a `halt` instruction.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Convenience accessor for a register of the current state.
    pub fn reg(&self, r: Reg) -> u32 {
        self.state.reg(r)
    }

    /// Executes at most one instruction.
    ///
    /// Returns `StepOutcome::Halted` without executing anything when the
    /// machine is already halted.
    ///
    /// # Errors
    /// Propagates [`VmError`]s from the transition function.
    pub fn step(&mut self) -> VmResult<StepOutcome> {
        if self.halted {
            return Ok(StepOutcome::Halted);
        }
        // Both arms are fully monomorphized: the untracked (main-thread)
        // path pays neither an Option branch per access nor a re-decode per
        // retired instruction.
        let outcome = match self.deps.as_mut() {
            Some(deps) => transition_cached(&mut self.state, deps, &mut self.icache)?,
            None => transition_cached(&mut self.state, &mut NoDeps, &mut self.icache)?,
        };
        match outcome {
            StepOutcome::Continue => self.instret += 1,
            StepOutcome::Halted => self.halted = true,
        }
        Ok(outcome)
    }

    /// Runs until the program halts or `budget` further instructions retire.
    ///
    /// # Errors
    /// Propagates [`VmError`]s from the transition function.
    pub fn run(&mut self, budget: u64) -> VmResult<RunExit> {
        if self.icache.enabled() {
            return self.run_tiered(budget);
        }
        for _ in 0..budget {
            match self.step()? {
                StepOutcome::Continue => {}
                StepOutcome::Halted => return Ok(RunExit::Halted),
            }
        }
        if self.halted {
            Ok(RunExit::Halted)
        } else {
            Ok(RunExit::BudgetExhausted)
        }
    }

    /// [`Machine::run`] through the tier-1 driver. The segment stop address
    /// is unreachable by any fetchable IP, so the only way a `StopIp` exit
    /// occurs is a wild indirect jump onto it — in which case the loop
    /// re-enters and the next dispatch faults, matching tier-0 exactly.
    fn run_tiered(&mut self, budget: u64) -> VmResult<RunExit> {
        let mut remaining = budget;
        loop {
            if self.halted {
                return Ok(RunExit::Halted);
            }
            let (retired, exit) = match self.deps.as_mut() {
                Some(deps) => run_segment(
                    &mut self.state,
                    deps,
                    &mut self.icache,
                    UNREACHABLE_STOP_IP,
                    remaining,
                ),
                None => run_segment(
                    &mut self.state,
                    &mut NoDeps,
                    &mut self.icache,
                    UNREACHABLE_STOP_IP,
                    remaining,
                ),
            };
            self.instret += retired;
            remaining -= retired;
            match exit {
                SegmentExit::Halted => {
                    self.halted = true;
                    return Ok(RunExit::Halted);
                }
                SegmentExit::Budget => return Ok(RunExit::BudgetExhausted),
                SegmentExit::Fault(error) => return Err(error),
                SegmentExit::StopIp => {}
            }
        }
    }

    /// Runs until the program halts, erroring if it takes more than `budget`
    /// instructions. Useful in tests where non-termination is a bug.
    ///
    /// # Errors
    /// Returns [`VmError::InstructionBudgetExceeded`] when the budget runs
    /// out, otherwise propagates transition errors.
    pub fn run_to_halt(&mut self, budget: u64) -> VmResult<u64> {
        match self.run(budget)? {
            RunExit::Halted => Ok(self.instret),
            RunExit::BudgetExhausted => Err(VmError::InstructionBudgetExceeded { budget }),
        }
    }

    /// Runs until the instruction pointer equals `ip` (checked *after* each
    /// retired instruction), the program halts, or the budget is exhausted.
    ///
    /// Returns the number of instructions retired by this call and the exit
    /// reason. This is the primitive both the recognizer (finding superstep
    /// boundaries) and the speculative workers (executing one superstep) use.
    ///
    /// # Errors
    /// Propagates [`VmError`]s from the transition function.
    pub fn run_until_ip(&mut self, ip: u32, budget: u64) -> VmResult<(u64, RunExit)> {
        if self.icache.enabled() {
            if self.halted {
                return Ok((0, RunExit::Halted));
            }
            let (retired, exit) = match self.deps.as_mut() {
                Some(deps) => run_segment(&mut self.state, deps, &mut self.icache, ip, budget),
                None => run_segment(&mut self.state, &mut NoDeps, &mut self.icache, ip, budget),
            };
            self.instret += retired;
            return match exit {
                SegmentExit::StopIp => Ok((retired, RunExit::Halted)),
                SegmentExit::Halted => {
                    self.halted = true;
                    Ok((retired, RunExit::Halted))
                }
                SegmentExit::Budget => Ok((retired, RunExit::BudgetExhausted)),
                SegmentExit::Fault(error) => Err(error),
            };
        }
        let start = self.instret;
        for _ in 0..budget {
            match self.step()? {
                StepOutcome::Continue => {
                    if self.state.ip() == ip {
                        return Ok((self.instret - start, RunExit::Halted));
                    }
                }
                StepOutcome::Halted => return Ok((self.instret - start, RunExit::Halted)),
            }
        }
        Ok((self.instret - start, RunExit::BudgetExhausted))
    }
}

/// Measures the raw simulation rate of a state vector in instructions per
/// second, optionally with dependency tracking, by executing up to
/// `instructions` transitions. Used by the §5.3 micro-benchmarks (baseline
/// 2.6 MIPS vs dependency-tracking 2.3 MIPS in the paper).
///
/// # Errors
/// Propagates transition errors from the underlying program.
pub fn measure_simulation_rate(
    state: &StateVector,
    instructions: u64,
    track_deps: bool,
) -> VmResult<f64> {
    let mut machine = Machine::from_state(state.clone());
    if track_deps {
        machine.enable_dep_tracking();
    }
    let start = std::time::Instant::now();
    machine.run(instructions)?;
    let elapsed = start.elapsed().as_secs_f64();
    if elapsed == 0.0 {
        return Ok(f64::INFINITY);
    }
    Ok(machine.instret() as f64 / elapsed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_all;
    use crate::isa::{Instruction as I, Opcode, Reg};

    fn r(i: u8) -> Reg {
        Reg::new(i).unwrap()
    }

    fn counting_program(iterations: i32) -> Program {
        // r1 = iterations; loop: r2 += r1; r1 -= 1; if r1 != 0 goto loop; halt
        let code = encode_all(&[
            I::ri(Opcode::MovI, r(1), iterations),
            I::ri(Opcode::MovI, r(2), 0),
            I::rrr(Opcode::Add, r(2), r(2), r(1)),
            I::rri(Opcode::AddI, r(1), r(1), -1),
            I::ri(Opcode::CmpI, r(1), 0),
            I::i(Opcode::Jne, 16),
            I::bare(Opcode::Halt),
        ]);
        Program::new(code, 0, 4096).unwrap()
    }

    #[test]
    fn run_to_halt_counts_instructions() {
        let mut machine = Machine::load(&counting_program(100)).unwrap();
        let instret = machine.run_to_halt(10_000).unwrap();
        assert_eq!(machine.reg(r(2)), 5050);
        assert_eq!(instret, 2 + 4 * 100);
        assert!(machine.is_halted());
    }

    #[test]
    fn budget_exhaustion_reports_and_is_resumable() {
        let mut machine = Machine::load(&counting_program(1000)).unwrap();
        assert_eq!(machine.run(10).unwrap(), RunExit::BudgetExhausted);
        assert_eq!(machine.instret(), 10);
        assert!(!machine.is_halted());
        // Resuming finishes the job with identical results.
        assert_eq!(machine.run(100_000).unwrap(), RunExit::Halted);
        assert_eq!(machine.reg(r(2)), 500_500);
    }

    #[test]
    fn run_to_halt_errors_on_budget() {
        let mut machine = Machine::load(&counting_program(1000)).unwrap();
        assert!(matches!(
            machine.run_to_halt(5),
            Err(VmError::InstructionBudgetExceeded { budget: 5 })
        ));
    }

    #[test]
    fn stepping_a_halted_machine_is_a_noop() {
        let mut machine = Machine::load(&counting_program(1)).unwrap();
        machine.run_to_halt(100).unwrap();
        let before = machine.instret();
        assert_eq!(machine.step().unwrap(), StepOutcome::Halted);
        assert_eq!(machine.instret(), before);
    }

    #[test]
    fn run_until_ip_stops_at_loop_head() {
        let mut machine = Machine::load(&counting_program(50)).unwrap();
        // Execute until the loop head (address 16) is first reached.
        let (steps, exit) = machine.run_until_ip(16, 1_000).unwrap();
        assert_eq!(exit, RunExit::Halted);
        assert_eq!(machine.state().ip(), 16);
        assert_eq!(steps, 2);
        // From the loop head, one full iteration returns to the loop head.
        let (steps, _) = machine.run_until_ip(16, 1_000).unwrap();
        assert_eq!(steps, 4);
    }

    #[test]
    fn dependency_tracking_can_be_enabled_and_harvested() {
        let mut machine = Machine::load(&counting_program(3)).unwrap();
        machine.enable_dep_tracking();
        machine.run_to_halt(1_000).unwrap();
        let deps = machine.take_deps().expect("deps were enabled");
        assert!(deps.touched() > 0);
        assert!(machine.take_deps().is_none());
    }

    #[test]
    fn tiered_machine_matches_untiered_run() {
        let program = counting_program(200);
        let mut plain = Machine::load(&program).unwrap();
        let mut tiered = Machine::load(&program).unwrap();
        tiered.enable_tier(TierConfig { hot_threshold: 2, ..TierConfig::default() });
        tiered.seed_hot(16);
        assert_eq!(plain.run(10_000).unwrap(), tiered.run(10_000).unwrap());
        assert_eq!(plain.state(), tiered.state());
        assert_eq!(plain.instret(), tiered.instret());
        assert!(plain.is_halted() && tiered.is_halted());
        let stats = tiered.tier_stats();
        assert!(stats.tier1_instructions > 0, "{stats:?}");
        assert!(stats.fused_ops > 0, "{stats:?}");
    }

    #[test]
    fn tiered_run_until_ip_matches_untiered() {
        let program = counting_program(50);
        let mut plain = Machine::load(&program).unwrap();
        let mut tiered = Machine::load(&program).unwrap();
        tiered.enable_tier(TierConfig { hot_threshold: 1, ..TierConfig::default() });
        tiered.seed_hot(16);
        for occurrence in 0..50 {
            let a = plain.run_until_ip(16, 1_000).unwrap();
            let b = tiered.run_until_ip(16, 1_000).unwrap();
            assert_eq!(a, b, "occurrence {occurrence}");
            assert_eq!(plain.state(), tiered.state(), "occurrence {occurrence}");
            assert_eq!(plain.instret(), tiered.instret(), "occurrence {occurrence}");
        }
    }

    #[test]
    fn tiered_budget_exhaustion_is_exact_and_resumable() {
        let mut plain = Machine::load(&counting_program(1000)).unwrap();
        let mut tiered = Machine::load(&counting_program(1000)).unwrap();
        tiered.enable_tier(TierConfig { hot_threshold: 1, ..TierConfig::default() });
        assert_eq!(plain.run(123).unwrap(), RunExit::BudgetExhausted);
        assert_eq!(tiered.run(123).unwrap(), RunExit::BudgetExhausted);
        assert_eq!(tiered.instret(), 123);
        assert_eq!(plain.state(), tiered.state());
        // Resuming mid-block-boundary finishes with identical results.
        assert_eq!(plain.run(100_000).unwrap(), RunExit::Halted);
        assert_eq!(tiered.run(100_000).unwrap(), RunExit::Halted);
        assert_eq!(plain.state(), tiered.state());
        assert_eq!(plain.instret(), tiered.instret());
    }

    #[test]
    fn tiered_dependency_tracking_matches_untiered() {
        let program = counting_program(30);
        let mut plain = Machine::load(&program).unwrap();
        let mut tiered = Machine::load(&program).unwrap();
        plain.enable_dep_tracking();
        tiered.enable_dep_tracking();
        tiered.enable_tier(TierConfig { hot_threshold: 1, ..TierConfig::default() });
        plain.run(10_000).unwrap();
        tiered.run(10_000).unwrap();
        assert_eq!(plain.state(), tiered.state());
        assert_eq!(plain.take_deps(), tiered.take_deps());
    }

    #[test]
    fn measure_simulation_rate_is_positive() {
        let program = counting_program(10_000);
        let state = program.initial_state().unwrap();
        let rate = measure_simulation_rate(&state, 20_000, false).unwrap();
        assert!(rate > 0.0);
        let tracked = measure_simulation_rate(&state, 20_000, true).unwrap();
        assert!(tracked > 0.0);
    }
}
