//! Bring your own program: write a kernel in TVM assembly, assemble it, and
//! let ASC discover and exploit its loop structure automatically — the
//! "straightforward to program" contract of the paper.
//!
//! ```sh
//! cargo run --release --example custom_program
//! ```

use asc_asm::assemble;
use asc_core::config::AscConfig;
use asc_core::runtime::LascRuntime;
use asc_tvm::isa::Reg;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A sequential kernel: sum of f(i) = 3*i + 7 over i = 1..=100_000,
    // written as an ordinary loop with no parallel annotations of any kind.
    let program = assemble(
        r#"
        main:
            movi r1, 100000      ; i
            movi r2, 0           ; accumulator
        loop:
            mul  r3, r1, 3
            add  r3, r3, 7
            add  r2, r2, r3
            sub  r1, r1, 1
            cmpi r1, 0
            jne  loop
            movi r4, result
            stw  [r4], r2
            halt
        .data
        result:
            .word 0
        "#,
    )?;

    let runtime = LascRuntime::new(AscConfig::default())?;
    let report = runtime.accelerate(&program)?;

    let expected: u64 = (1..=100_000u64).map(|i| 3 * i + 7).sum();
    let got = report.final_state.load_word(program.symbol("result").unwrap())?;
    assert_eq!(got, expected as u32, "ASC must preserve the program's result");

    println!("result            : {got} (correct)");
    println!("recognized IP     : {:#x}", report.rip.ip);
    println!(
        "fast-forwarded    : {} of {} instructions",
        report.fast_forwarded_instructions, report.total_instructions
    );
    println!("work scaling      : {:.2}x", report.work_scaling());
    println!("final r2          : {}", report.final_state.reg(Reg::new(2).unwrap()));
    Ok(())
}
