//! Reproduce the shape of Figure 4 for the pointer-chasing Ising kernel:
//! measure an instrumented run, then replay it against the 32-core-server
//! and Blue Gene/P cost models at increasing core counts.
//!
//! ```sh
//! cargo run --release --example ising_scaling
//! ```

use asc_core::cluster::{blue_gene_core_counts, scaling_curve, PlatformProfile, ScalingMode};
use asc_core::config::AscConfig;
use asc_core::runtime::LascRuntime;
use asc_workloads::registry::{build, Benchmark, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = build(Benchmark::Ising, Scale::Small)?;
    let config = AscConfig { explore_instructions: 80_000, ..AscConfig::default() };
    let runtime = LascRuntime::new(config)?;
    let report = runtime.measure(&workload.program)?;
    assert!(workload.verify(&report.final_state));
    println!(
        "Ising: {} supersteps of ≈{:.0} instructions, one-step prediction accuracy {:.1}%",
        report.supersteps.len(),
        report.mean_superstep(),
        report.one_step_accuracy() * 100.0
    );

    let server = PlatformProfile::server_32core();
    println!("\n32-core server:");
    for point in scaling_curve(&report, &server, ScalingMode::Lasc, &[1, 2, 4, 8, 16, 32]) {
        println!(
            "  {:>5} cores -> {:>7.2}x (hit rate {:.1}%)",
            point.cores,
            point.scaling,
            point.hit_rate * 100.0
        );
    }

    let bluegene = PlatformProfile::blue_gene_p();
    println!("\nBlue Gene/P:");
    for point in scaling_curve(&report, &bluegene, ScalingMode::Lasc, &blue_gene_core_counts(4096))
    {
        println!(
            "  {:>5} cores -> {:>7.2}x (hit rate {:.1}%)",
            point.cores,
            point.scaling,
            point.hit_rate * 100.0
        );
    }
    Ok(())
}
