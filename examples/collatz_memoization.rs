//! Reproduce the rightmost plot of Figure 6: single-core generalized
//! memoization of the Collatz kernel — no prediction, no extra cores, just
//! the program's own past trajectory reused through the cache.
//!
//! ```sh
//! cargo run --release --example collatz_memoization
//! ```

use asc_core::config::AscConfig;
use asc_core::runtime::LascRuntime;
use asc_workloads::collatz::{pure_program, read_pure_result, CollatzParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = CollatzParams { start: 2, count: 5_000 };
    let program = pure_program(&params)?;
    let config = AscConfig { min_superstep: 8, ..AscConfig::default() };
    let runtime = LascRuntime::new(config)?;
    let (report, series) = runtime.memoize(&program, 2.0)?;

    assert_eq!(read_pure_result(&program, &report.final_state)?, params.count);
    println!("verified {} integers", params.count);
    println!(
        "memoized {} of {} instructions ({} cache hits, {} entries inserted)",
        report.fast_forwarded_instructions,
        report.total_instructions,
        report.cache_stats.hits,
        report.cache_stats.inserted
    );
    println!("\nscaling over time (instructions retired vs scaling):");
    let step = (series.len() / 20).max(1);
    for (instructions, scaling) in series.iter().step_by(step) {
        println!("  {:>12} {:>8.3}", instructions, scaling);
    }
    Ok(())
}
