//! Quickstart: run an unmodified sequential TVM program under the LASC
//! runtime and watch it fast-forward through the trajectory cache.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use asc_core::config::AscConfig;
use asc_core::runtime::LascRuntime;
use asc_workloads::registry::{build, Benchmark, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = build(Benchmark::Collatz, Scale::Small)?;
    println!("benchmark : {} ({})", workload.benchmark, workload.description);

    let runtime = LascRuntime::new(AscConfig::default())?;
    let report = runtime.accelerate(&workload.program)?;

    assert!(workload.verify(&report.final_state), "speculation never changes results");
    println!(
        "recognized IP     : {:#x} (superstep ≈ {:.0} instructions)",
        report.rip.ip, report.rip.mean_superstep
    );
    println!("converge time     : {} instructions", report.converge_instructions);
    println!("total work        : {} instructions", report.total_instructions);
    println!("executed          : {} instructions", report.executed_instructions);
    println!("fast-forwarded    : {} instructions", report.fast_forwarded_instructions);
    println!(
        "cache             : {} hits / {} queries",
        report.cache_stats.hits, report.cache_stats.queries
    );
    println!("work scaling      : {:.2}x", report.work_scaling());
    Ok(())
}
