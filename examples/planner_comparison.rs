//! Continuous-speculation planner vs. PR 1's miss-driven dispatch: cache hit
//! rates, fast-forwarded work and wall-clock on Collatz Small at several
//! worker counts.
//!
//! ```sh
//! cargo run --release --example planner_comparison
//! ```

use asc_bench::small_collatz_config;
use asc_core::runtime::LascRuntime;
use asc_workloads::registry::{build, Benchmark, Scale};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = build(Benchmark::Collatz, Scale::Small)?;
    println!("benchmark: {} ({})", workload.benchmark, workload.description);
    println!(
        "{:<26} {:>8} {:>10} {:>12} {:>14} {:>10}",
        "mode", "hits", "queries", "hit rate", "fast-forward", "wall"
    );
    for (label, workers, planner) in [
        ("miss-driven 2 workers", 2, false),
        ("planner     2 workers", 2, true),
        ("miss-driven 4 workers", 4, false),
        ("planner     4 workers", 4, true),
    ] {
        let runtime = LascRuntime::new(small_collatz_config(workers, planner))?;
        let started = Instant::now();
        let report = runtime.accelerate(&workload.program)?;
        let wall = started.elapsed();
        assert!(workload.verify(&report.final_state), "speculation never changes results");
        let stats = report.cache_stats;
        println!(
            "{:<26} {:>8} {:>10} {:>11.1}% {:>14} {:>9.0}ms",
            label,
            stats.hits,
            stats.queries,
            100.0 * (1.0 - stats.miss_rate()),
            report.fast_forwarded_instructions,
            wall.as_secs_f64() * 1e3,
        );
    }
    Ok(())
}
