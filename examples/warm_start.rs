//! Persistent warm start through the remote tier's snapshot files: run the
//! same program twice, letting the first run save its trajectory cache and
//! the second load it — the second run starts hitting immediately instead
//! of re-paying the miss-driven warmup.
//!
//! ```sh
//! cargo run --release --example warm_start
//! ```
//!
//! The same `remote` config block also accepts `peer: Some("host:port")`
//! to share trajectories with a live `asc_core::remote::CachePeer` over
//! TCP — see the `remote_warm_start` binary in `asc-bench` for the
//! two-process version of this example.

use asc_core::config::AscConfig;
use asc_core::runtime::LascRuntime;
use asc_workloads::registry::{build, Benchmark, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let snapshot = std::env::temp_dir().join(format!("asc-warm-start-{}.snap", std::process::id()));
    let workload = build(Benchmark::Collatz, Scale::Small)?;

    // Cold run: miss-driven warmup, then save the cache on shutdown.
    let mut cold_config = AscConfig::default();
    cold_config.remote.enabled = true;
    cold_config.remote.snapshot_save = Some(snapshot.clone());
    let cold = LascRuntime::new(cold_config)?.accelerate(&workload.program)?;
    assert!(workload.verify(&cold.final_state));
    let cold_stats = cold.cache_stats;
    let saved = cold.remote.expect("remote tier enabled").snapshot_saved;
    println!(
        "cold run:  {:.1}% hit rate ({} hits / {} queries), snapshot saved {saved} entries",
        100.0 * cold_stats.hits as f64 / cold_stats.queries.max(1) as f64,
        cold_stats.hits,
        cold_stats.queries,
    );

    // Warm run: same program, cache pre-loaded from the first run's file.
    let mut warm_config = AscConfig::default();
    warm_config.remote.enabled = true;
    warm_config.remote.snapshot_load = Some(snapshot.clone());
    let warm = LascRuntime::new(warm_config)?.accelerate(&workload.program)?;
    std::fs::remove_file(&snapshot).ok();
    assert!(workload.verify(&warm.final_state));
    assert_eq!(
        cold.final_state.as_bytes(),
        warm.final_state.as_bytes(),
        "warm start may only skip work, never change results"
    );
    let warm_stats = warm.cache_stats;
    let remote = warm.remote.expect("remote tier enabled");
    println!(
        "warm run:  {:.1}% hit rate ({} hits / {} queries), snapshot loaded {} entries",
        100.0 * warm_stats.hits as f64 / warm_stats.queries.max(1) as f64,
        warm_stats.hits,
        warm_stats.queries,
        remote.snapshot_loaded,
    );
    println!(
        "work scaling: cold {:.2}x -> warm {:.2}x (identical final states)",
        cold.work_scaling(),
        warm.work_scaling(),
    );
    Ok(())
}
