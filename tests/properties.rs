//! Property-based tests over the core data structures and invariants:
//! instruction encoding, dependency tracking, sparse captures, deltas and the
//! determinism of the transition function.
//!
//! The build environment is offline, so instead of `proptest` these use a
//! seeded in-repo generator ([`asc::learn::rng::XorShiftRng`]) driving many
//! randomized cases per property — deterministic across runs, so a failure
//! reproduces exactly.

use asc::learn::rng::{Rng, XorShiftRng};
use asc::tvm::delta::{Delta, SparseBytes};
use asc::tvm::deps::{DepStatus, DepVector};
use asc::tvm::encode::{decode, encode};
use asc::tvm::exec::{transition, StepOutcome};
use asc::tvm::isa::{Instruction, Opcode};
use asc::tvm::state::StateVector;

const CASES: usize = 256;

fn gen_index(rng: &mut XorShiftRng, bound: usize) -> usize {
    (rng.next_u64() % bound as u64) as usize
}

fn gen_u8(rng: &mut XorShiftRng) -> u8 {
    rng.next_u64() as u8
}

#[test]
fn instruction_encoding_roundtrips() {
    let mut rng = XorShiftRng::new(0x5eed_0001);
    for _ in 0..CASES {
        let opcode = Opcode::ALL[gen_index(&mut rng, Opcode::ALL.len())];
        let instruction = Instruction {
            opcode,
            a: (rng.next_u64() % 16) as u8,
            b: (rng.next_u64() % 16) as u8,
            c: (rng.next_u64() % 16) as u8,
            imm: rng.next_u64() as u32 as i32,
        };
        let decoded = decode(&encode(&instruction), 0).unwrap();
        assert_eq!(decoded, instruction);
    }
}

#[test]
fn dependency_fsm_read_and_write_sets_are_disjoint_unions() {
    let mut rng = XorShiftRng::new(0x5eed_0002);
    for _ in 0..CASES {
        let mut deps = DepVector::new(32);
        let ops = gen_index(&mut rng, 200);
        for _ in 0..ops {
            let index = gen_index(&mut rng, 32);
            if rng.gen_bool(0.5) {
                deps.note_read(index);
            } else {
                deps.note_write(index);
            }
        }
        // Every touched byte is in the read set, the write set, or both; and
        // read-only bytes have status Read, write-only bytes Written.
        for index in 0..32 {
            let status = deps.status(index);
            let in_read = deps.read_set().contains(&index);
            let in_write = deps.write_set().contains(&index);
            match status {
                DepStatus::Null => assert!(!in_read && !in_write),
                DepStatus::Read => assert!(in_read && !in_write),
                DepStatus::Written => assert!(!in_read && in_write),
                DepStatus::WrittenAfterRead => assert!(in_read && in_write),
            }
        }
    }
}

#[test]
fn sparse_capture_apply_restores_captured_bytes() {
    let mut rng = XorShiftRng::new(0x5eed_0003);
    for _ in 0..CASES {
        let mut state = StateVector::new(64).unwrap();
        for i in 0..state.len_bytes() {
            state.set_byte(i, gen_u8(&mut rng));
        }
        let count = 1 + gen_index(&mut rng, 31);
        let indices: Vec<usize> = (0..count).map(|_| gen_index(&mut rng, 64)).collect();
        let capture = SparseBytes::capture(&state, indices.iter().copied());
        assert!(capture.matches(&state));
        // Applying the capture to a zeroed state makes it match.
        let mut blank = StateVector::new(64).unwrap();
        capture.apply(&mut blank);
        assert!(capture.matches(&blank));
    }
}

#[test]
fn delta_roundtrips_arbitrary_states() {
    let mut rng = XorShiftRng::new(0x5eed_0004);
    for _ in 0..CASES {
        let old: Vec<u8> = (0..256).map(|_| gen_u8(&mut rng)).collect();
        let mut new = old.clone();
        for _ in 0..gen_index(&mut rng, 64) {
            let index = gen_index(&mut rng, 256);
            new[index] = gen_u8(&mut rng);
        }
        let delta = Delta::diff(&old, &new);
        assert_eq!(delta.apply(&old), new);
    }
}

#[test]
fn transition_is_deterministic_and_dep_tracking_is_transparent() {
    // A small loop program; executing it twice (with and without dependency
    // tracking) must give byte-identical states.
    for iterations in (1i32..60).step_by(7) {
        let program = asc::asm::assemble(&format!(
            "main:\n movi r1, {iterations}\nloop:\n add r2, r2, r1\n sub r1, r1, 1\n cmpi r1, 0\n jne loop\n halt\n"
        )).unwrap();
        let mut a = program.initial_state().unwrap();
        let mut b = program.initial_state().unwrap();
        let mut deps = DepVector::new(b.len_bytes());
        loop {
            let ra = transition(&mut a, None).unwrap();
            let rb = transition(&mut b, Some(&mut deps)).unwrap();
            assert_eq!(ra, rb);
            if ra == StepOutcome::Halted {
                break;
            }
        }
        assert_eq!(a, b);
        assert!(deps.touched() > 0);
    }
}

/// The trajectory cache's grouped value-hash index must be *equivalent* to
/// the retained reference scan (`scan_best_match`): for any population —
/// including replace and FIFO-evict churn, shared and singleton dependency
/// shapes, and with the junk filter on or off — `peek` returns an entry
/// whose instruction count equals the scan's best and whose start set
/// matches the query state, and misses exactly when the scan misses.
#[test]
fn indexed_cache_lookup_is_equivalent_to_reference_scan_under_churn() {
    use asc::core::cache::{CacheEntry, TrajectoryCache};

    let mut rng = XorShiftRng::new(0x5eed_cac8);
    // A small pool of byte positions so shapes recur (grouping) while some
    // entries still get singleton shapes (chaotic junk).
    const POSITION_POOL: [u32; 10] = [4, 9, 17, 40, 64, 65, 100, 128, 200, 255];
    const RIPS: [u32; 2] = [8, 64];

    for case in 0..6 {
        // Tight capacities force eviction churn; odd cases enable the junk
        // filter, shard counts vary across the supported range.
        let capacity = 24 + gen_index(&mut rng, 80);
        let shards = 1 + gen_index(&mut rng, 16);
        let junk_threshold = if case % 2 == 0 { 0 } else { 4 };
        let cache = TrajectoryCache::with_layout(capacity, shards, junk_threshold as u64);

        for _ in 0..400 {
            // Insert a randomized entry: 0–3 positions from the pool
            // (duplicates collapse), values in a small range so queries hit,
            // random length so longer trajectories replace shorter ones.
            let deps: Vec<(u32, u8)> = (0..gen_index(&mut rng, 4))
                .map(|_| {
                    let position = POSITION_POOL[gen_index(&mut rng, POSITION_POOL.len())];
                    (position, (rng.next_u64() % 3) as u8)
                })
                .collect();
            let entry = CacheEntry::new(
                RIPS[gen_index(&mut rng, RIPS.len())],
                asc::tvm::delta::SparseBytes::from_pairs(deps),
                asc::tvm::delta::SparseBytes::from_pairs(vec![(300, gen_u8(&mut rng))]),
                1 + rng.next_u64() % 500,
            );
            cache.insert(entry);

            // Query both paths from a random state and demand equivalence.
            let mut state = StateVector::new(512).unwrap();
            for &position in &POSITION_POOL {
                state.set_byte(position as usize, (rng.next_u64() % 3) as u8);
            }
            for rip in RIPS {
                let indexed = cache.peek(rip, &state);
                let scanned = cache.scan_best_match(rip, &state);
                match (&indexed, &scanned) {
                    (Some(found), Some(reference)) => {
                        assert_eq!(
                            found.instructions, reference.instructions,
                            "case {case}: index and scan disagree on the best entry"
                        );
                        assert!(
                            found.matches(&state),
                            "case {case}: index returned a non-matching entry"
                        );
                    }
                    (None, None) => {}
                    other => panic!("case {case}: hit/miss divergence: {other:?}"),
                }
                assert_eq!(
                    cache.covers(rip, &state),
                    scanned.is_some(),
                    "case {case}: covers() diverged from the scan"
                );
            }
        }
        let stats = cache.stats();
        // The churn must actually have exercised the interesting paths.
        assert!(stats.evicted > 0, "case {case}: no eviction churn ({stats:?})");
        assert!(stats.groups > 3, "case {case}: too few groups ({stats:?})");
        assert!(stats.replaced + stats.duplicates > 0, "case {case}: no replace churn ({stats:?})");
        assert_eq!(
            cache.len() as u64,
            stats.inserted - stats.evicted,
            "case {case}: eviction accounting drifted ({stats:?})"
        );
    }
}

/// Robustness of every length-prefixed format the system persists or ships
/// — peer-protocol frames, snapshot streams and checkpoint files, i.e.
/// **all** [`FrameKind`]s: under seeded random byte mutations and
/// truncations, every consumer must reject cleanly (`InvalidData`, a
/// dropped frame, or fallback to "no checkpoint") — never panic, never
/// decode a wrong value, and never let a corrupted length field drive an
/// unbounded read or allocation.
mod format_robustness {
    use super::*;
    use asc::core::cache::{CacheEntry, TrajectoryCache};
    use asc::core::checkpoint::{self, RunCheckpoint};
    use asc::core::recognizer::RecognizedIp;
    use asc::core::remote::codec::{self, FrameKind, HEADER_LEN, MAGIC, MAX_PAYLOAD, VERSION};
    use asc::core::remote::snapshot;
    use std::io::ErrorKind;
    use std::path::PathBuf;

    const SWEEP_CASES: usize = 512;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("asc-properties-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            Self(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn sample_entry(rng: &mut XorShiftRng) -> CacheEntry {
        let start: Vec<(u32, u8)> = (0..1 + gen_index(rng, 6))
            .map(|_| (rng.next_u64() as u32 % 256, gen_u8(rng)))
            .collect();
        let delta: Vec<(u32, u8)> = (0..1 + gen_index(rng, 6))
            .map(|_| (rng.next_u64() as u32 % 256, gen_u8(rng)))
            .collect();
        CacheEntry::new(
            rng.next_u64() as u32 % 128,
            SparseBytes::from_pairs(start),
            SparseBytes::from_pairs(delta),
            1 + rng.next_u64() % 10_000,
        )
    }

    /// One valid framed artifact per [`FrameKind`] — the sweep's corpus.
    /// The checkpoint kinds come from a real checkpoint file so the frames
    /// carry real section layouts, not synthetic payloads.
    fn frame_corpus(rng: &mut XorShiftRng) -> Vec<(&'static str, Vec<u8>)> {
        let entry = codec::encode_entry(&sample_entry(rng));
        let cache = TrajectoryCache::with_layout(64, 1, 0);
        cache.insert(sample_entry(rng));
        let mut corpus = vec![
            ("get", codec::encode_frame(FrameKind::Get, &codec::encode_get(8, &[(1, 2), (3, 4)]))),
            ("get-hit", codec::encode_frame(FrameKind::GetHit, &entry)),
            ("get-miss", codec::encode_frame(FrameKind::GetMiss, &[])),
            ("put", codec::encode_frame(FrameKind::Put, &entry)),
            ("stats-request", codec::encode_frame(FrameKind::StatsRequest, &[])),
            (
                "stats-reply",
                codec::encode_frame(FrameKind::StatsReply, &cache.stats().to_le_bytes()),
            ),
            ("snapshot-request", codec::encode_frame(FrameKind::SnapshotRequest, &[])),
            (
                "snapshot-header",
                codec::encode_frame(
                    FrameKind::SnapshotHeader,
                    &codec::encode_snapshot_header(&cache.stats(), 1),
                ),
            ),
            ("snapshot-entry", codec::encode_frame(FrameKind::Entry, &entry)),
            ("snapshot-end", codec::encode_frame(FrameKind::SnapshotEnd, &[])),
        ];
        // A whole checkpoint file is a frame stream covering the three
        // checkpoint kinds: CheckpointHeader + CheckpointSection* +
        // CheckpointEnd.
        let dir = TempDir::new("frame-corpus");
        checkpoint::save(&dir.0, &sample_checkpoint(rng), 1).unwrap();
        let file = std::fs::read(checkpoint::checkpoint_path_for(&dir.0, 1)).unwrap();
        corpus.push(("checkpoint-stream", file));
        corpus
    }

    fn sample_checkpoint(rng: &mut XorShiftRng) -> RunCheckpoint {
        let state: Vec<u8> = (0..128).map(|_| gen_u8(rng)).collect();
        RunCheckpoint {
            sequence: 1,
            fingerprint: 0xfee1_600d,
            occurrence: 42,
            rip: RecognizedIp {
                ip: 8,
                stride: 1,
                mean_superstep: 900.0,
                accuracy: 0.75,
                score: 675.0,
            },
            unique_ips: 7,
            converge_instructions: 5_000,
            resume_instret: 90_000,
            fast_forwarded: 30_000,
            state,
            bank: Some((0..64).map(|_| gen_u8(rng)).collect()),
            economics: Some((0..32).map(|_| gen_u8(rng)).collect()),
        }
    }

    /// Drains a byte stream through [`codec::read_frame`] plus every
    /// payload decoder; the only legal outcomes are clean frames, a clean
    /// end-of-stream, or a clean error.
    fn consume_stream(bytes: &[u8]) {
        let mut reader = bytes;
        loop {
            match codec::read_frame(&mut reader) {
                Ok(Some(frame)) => {
                    // Whatever kind the (possibly corrupted) header claims,
                    // every payload decoder must handle the bytes without
                    // panicking — a decoder trusts nothing about routing.
                    let _ = codec::decode_entry(&frame.payload);
                    let _ = codec::decode_get(&frame.payload);
                    let _ = codec::decode_snapshot_header(&frame.payload);
                }
                Ok(None) => break,
                Err(err) => {
                    assert!(
                        matches!(err.kind(), ErrorKind::InvalidData | ErrorKind::UnexpectedEof),
                        "unexpected rejection kind: {err:?}"
                    );
                    break;
                }
            }
        }
    }

    /// Seeded mutation/truncation sweep over the full frame corpus.
    #[test]
    fn mutated_or_truncated_frames_are_rejected_cleanly_for_every_kind() {
        let mut rng = XorShiftRng::new(0x5eed_f3a7);
        let corpus = frame_corpus(&mut rng);
        for (name, pristine) in &corpus {
            consume_stream(pristine); // the corpus itself must parse
            for _ in 0..SWEEP_CASES {
                let mut bytes = pristine.clone();
                if rng.gen_bool(0.5) {
                    // Byte mutation: a guaranteed-nonzero xor somewhere.
                    let index = gen_index(&mut rng, bytes.len());
                    let flip = 1 + (rng.next_u64() as u8 % 255);
                    bytes[index] ^= flip;
                } else {
                    // Truncation: cut strictly inside the artifact.
                    bytes.truncate(gen_index(&mut rng, bytes.len()));
                }
                consume_stream(&bytes); // must not panic, ever ({name})
                let _ = name;
            }
        }
    }

    /// A corrupted length field must be rejected *before* any read or
    /// allocation proportional to it: the reader behind the frame offers
    /// infinite bytes, so surviving this test proves the bound.
    #[test]
    fn oversized_length_fields_are_rejected_without_allocation() {
        use std::io::Read;
        for claimed in [MAX_PAYLOAD + 1, u32::MAX / 2, u32::MAX] {
            let mut header = Vec::with_capacity(HEADER_LEN);
            header.extend_from_slice(&MAGIC);
            header.extend_from_slice(&VERSION.to_le_bytes());
            header.push(FrameKind::Put as u8);
            header.extend_from_slice(&claimed.to_le_bytes());
            let mut reader = header.as_slice().chain(std::io::repeat(0xAB));
            let err = codec::read_frame(&mut reader)
                .expect_err("an oversized length field must be rejected");
            assert_eq!(err.kind(), ErrorKind::InvalidData, "claimed {claimed}");
        }
    }

    /// The same sweep against the snapshot *file* consumer: a mutated or
    /// truncated snapshot loads what survives checksum verification and
    /// counts the rest rejected — or reports a clean error — and a
    /// truncated stream is never reported complete.
    #[test]
    fn mutated_snapshot_files_load_only_verified_entries() {
        let mut rng = XorShiftRng::new(0x5eed_54a9);
        let dir = TempDir::new("snapshot-sweep");
        let source = TrajectoryCache::with_layout(64, 1, 0);
        for _ in 0..16 {
            source.insert(sample_entry(&mut rng));
        }
        let path = dir.0.join("snapshot.asc");
        let saved = snapshot::save(&source, &path).unwrap();
        let pristine = std::fs::read(&path).unwrap();

        for case in 0..SWEEP_CASES {
            let mut bytes = pristine.clone();
            if rng.gen_bool(0.5) {
                let index = gen_index(&mut rng, bytes.len());
                bytes[index] ^= 1 + (rng.next_u64() as u8 % 255);
            } else {
                bytes.truncate(gen_index(&mut rng, bytes.len()));
            }
            let mutated = dir.0.join("mutated.asc");
            std::fs::write(&mutated, &bytes).unwrap();
            let target = TrajectoryCache::with_layout(64, 1, 0);
            match snapshot::load(&target, &mutated) {
                Ok(load) => {
                    assert!(
                        load.loaded <= saved,
                        "case {case}: loaded more entries than were saved ({load:?})"
                    );
                    // Every entry that made it into the cache passed its
                    // integrity checksum; anything else was counted.
                    if bytes.len() < pristine.len() {
                        assert!(
                            !load.complete || load.rejected > 0 || load.loaded < saved,
                            "case {case}: a truncated stream claimed completeness ({load:?})"
                        );
                    }
                }
                Err(err) => assert!(
                    matches!(err.kind(), ErrorKind::InvalidData | ErrorKind::UnexpectedEof),
                    "case {case}: unexpected rejection kind: {err:?}"
                ),
            }
        }
    }

    /// The same sweep against the checkpoint consumer: a damaged newest
    /// file alone in the directory must load as "no checkpoint" — never a
    /// wrong state — and with an older intact file present, that file wins.
    #[test]
    fn mutated_checkpoint_files_fall_back_to_older_intact_or_none() {
        let mut rng = XorShiftRng::new(0x5eed_c4e1);
        let older = sample_checkpoint(&mut rng);
        let mut newer = sample_checkpoint(&mut rng);
        newer.sequence = 2;
        newer.occurrence = 84;

        let dir = TempDir::new("checkpoint-sweep");
        checkpoint::save(&dir.0, &newer, 4).unwrap();
        let pristine = std::fs::read(checkpoint::checkpoint_path_for(&dir.0, 2)).unwrap();

        for (with_older, label) in [(false, "alone"), (true, "with-older")] {
            let dir = TempDir::new(&format!("checkpoint-sweep-{label}"));
            if with_older {
                checkpoint::save(&dir.0, &older, 4).unwrap();
            }
            let newest = checkpoint::checkpoint_path_for(&dir.0, 2);
            for case in 0..SWEEP_CASES {
                let mut bytes = pristine.clone();
                if rng.gen_bool(0.5) {
                    let index = gen_index(&mut rng, bytes.len());
                    bytes[index] ^= 1 + (rng.next_u64() as u8 % 255);
                } else {
                    bytes.truncate(gen_index(&mut rng, bytes.len()));
                }
                std::fs::write(&newest, &bytes).unwrap();
                let scan = checkpoint::load_newest(&dir.0, newer.fingerprint);
                match &scan.checkpoint {
                    None => assert!(!with_older, "case {case}/{label}: intact older file lost"),
                    Some(found) => {
                        assert!(with_older, "case {case}/{label}: damaged file decoded");
                        assert_eq!(
                            found, &older,
                            "case {case}/{label}: fallback returned a wrong checkpoint"
                        );
                    }
                }
                assert!(scan.rejected_files >= 1, "case {case}/{label}: damage went uncounted");
            }
        }
    }
}
