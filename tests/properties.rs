//! Property-based tests over the core data structures and invariants:
//! instruction encoding, dependency tracking, sparse captures, deltas and the
//! determinism of the transition function.

use asc::tvm::delta::{Delta, SparseBytes};
use asc::tvm::deps::{DepStatus, DepVector};
use asc::tvm::encode::{decode, encode};
use asc::tvm::exec::{transition, StepOutcome};
use asc::tvm::isa::{Instruction, Opcode};
use asc::tvm::state::StateVector;
use proptest::prelude::*;

fn arbitrary_opcode() -> impl Strategy<Value = Opcode> {
    prop::sample::select(Opcode::ALL.to_vec())
}

proptest! {
    #[test]
    fn instruction_encoding_roundtrips(op in arbitrary_opcode(), a in 0u8..16, b in 0u8..16, c in 0u8..16, imm in any::<i32>()) {
        let instruction = Instruction { opcode: op, a, b, c, imm };
        let decoded = decode(&encode(&instruction), 0).unwrap();
        prop_assert_eq!(decoded, instruction);
    }

    #[test]
    fn dependency_fsm_read_and_write_sets_are_disjoint_unions(ops in prop::collection::vec((any::<bool>(), 0usize..32), 0..200)) {
        let mut deps = DepVector::new(32);
        for (is_read, index) in ops {
            if is_read {
                deps.note_read(index);
            } else {
                deps.note_write(index);
            }
        }
        // Every touched byte is in the read set, the write set, or both; and
        // read-only bytes have status Read, write-only bytes Written.
        for index in 0..32 {
            let status = deps.status(index);
            let in_read = deps.read_set().contains(&index);
            let in_write = deps.write_set().contains(&index);
            match status {
                DepStatus::Null => prop_assert!(!in_read && !in_write),
                DepStatus::Read => prop_assert!(in_read && !in_write),
                DepStatus::Written => prop_assert!(!in_read && in_write),
                DepStatus::WrittenAfterRead => prop_assert!(in_read && in_write),
            }
        }
    }

    #[test]
    fn sparse_capture_apply_restores_captured_bytes(values in prop::collection::vec(any::<u8>(), 64), indices in prop::collection::vec(0usize..64, 1..32)) {
        let mut state = StateVector::new(64).unwrap();
        for (i, v) in values.iter().enumerate() {
            state.set_byte(i, *v);
        }
        let capture = SparseBytes::capture(&state, indices.iter().copied());
        prop_assert!(capture.matches(&state));
        // Applying the capture to a zeroed state makes it match.
        let mut blank = StateVector::new(64).unwrap();
        capture.apply(&mut blank);
        prop_assert!(capture.matches(&blank));
    }

    #[test]
    fn delta_roundtrips_arbitrary_states(old in prop::collection::vec(any::<u8>(), 256), changes in prop::collection::vec((0usize..256, any::<u8>()), 0..64)) {
        let mut new = old.clone();
        for (index, value) in changes {
            new[index] = value;
        }
        let delta = Delta::diff(&old, &new);
        prop_assert_eq!(delta.apply(&old), new);
    }

    #[test]
    fn transition_is_deterministic_and_dep_tracking_is_transparent(iterations in 1i32..60) {
        // A small loop program; executing it twice (with and without
        // dependency tracking) must give byte-identical states.
        let program = asc::asm::assemble(&format!(
            "main:\n movi r1, {iterations}\nloop:\n add r2, r2, r1\n sub r1, r1, 1\n cmpi r1, 0\n jne loop\n halt\n"
        )).unwrap();
        let mut a = program.initial_state().unwrap();
        let mut b = program.initial_state().unwrap();
        let mut deps = DepVector::new(b.len_bytes());
        loop {
            let ra = transition(&mut a, None).unwrap();
            let rb = transition(&mut b, Some(&mut deps)).unwrap();
            prop_assert_eq!(ra, rb);
            if ra == StepOutcome::Halted {
                break;
            }
        }
        prop_assert_eq!(a, b);
        prop_assert!(deps.touched() > 0);
    }
}
