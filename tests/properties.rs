//! Property-based tests over the core data structures and invariants:
//! instruction encoding, dependency tracking, sparse captures, deltas and the
//! determinism of the transition function.
//!
//! The build environment is offline, so instead of `proptest` these use a
//! seeded in-repo generator ([`asc::learn::rng::XorShiftRng`]) driving many
//! randomized cases per property — deterministic across runs, so a failure
//! reproduces exactly.

use asc::learn::rng::{Rng, XorShiftRng};
use asc::tvm::delta::{Delta, SparseBytes};
use asc::tvm::deps::{DepStatus, DepVector};
use asc::tvm::encode::{decode, encode};
use asc::tvm::exec::{transition, StepOutcome};
use asc::tvm::isa::{Instruction, Opcode};
use asc::tvm::state::StateVector;

const CASES: usize = 256;

fn gen_index(rng: &mut XorShiftRng, bound: usize) -> usize {
    (rng.next_u64() % bound as u64) as usize
}

fn gen_u8(rng: &mut XorShiftRng) -> u8 {
    rng.next_u64() as u8
}

#[test]
fn instruction_encoding_roundtrips() {
    let mut rng = XorShiftRng::new(0x5eed_0001);
    for _ in 0..CASES {
        let opcode = Opcode::ALL[gen_index(&mut rng, Opcode::ALL.len())];
        let instruction = Instruction {
            opcode,
            a: (rng.next_u64() % 16) as u8,
            b: (rng.next_u64() % 16) as u8,
            c: (rng.next_u64() % 16) as u8,
            imm: rng.next_u64() as u32 as i32,
        };
        let decoded = decode(&encode(&instruction), 0).unwrap();
        assert_eq!(decoded, instruction);
    }
}

#[test]
fn dependency_fsm_read_and_write_sets_are_disjoint_unions() {
    let mut rng = XorShiftRng::new(0x5eed_0002);
    for _ in 0..CASES {
        let mut deps = DepVector::new(32);
        let ops = gen_index(&mut rng, 200);
        for _ in 0..ops {
            let index = gen_index(&mut rng, 32);
            if rng.gen_bool(0.5) {
                deps.note_read(index);
            } else {
                deps.note_write(index);
            }
        }
        // Every touched byte is in the read set, the write set, or both; and
        // read-only bytes have status Read, write-only bytes Written.
        for index in 0..32 {
            let status = deps.status(index);
            let in_read = deps.read_set().contains(&index);
            let in_write = deps.write_set().contains(&index);
            match status {
                DepStatus::Null => assert!(!in_read && !in_write),
                DepStatus::Read => assert!(in_read && !in_write),
                DepStatus::Written => assert!(!in_read && in_write),
                DepStatus::WrittenAfterRead => assert!(in_read && in_write),
            }
        }
    }
}

#[test]
fn sparse_capture_apply_restores_captured_bytes() {
    let mut rng = XorShiftRng::new(0x5eed_0003);
    for _ in 0..CASES {
        let mut state = StateVector::new(64).unwrap();
        for i in 0..state.len_bytes() {
            state.set_byte(i, gen_u8(&mut rng));
        }
        let count = 1 + gen_index(&mut rng, 31);
        let indices: Vec<usize> = (0..count).map(|_| gen_index(&mut rng, 64)).collect();
        let capture = SparseBytes::capture(&state, indices.iter().copied());
        assert!(capture.matches(&state));
        // Applying the capture to a zeroed state makes it match.
        let mut blank = StateVector::new(64).unwrap();
        capture.apply(&mut blank);
        assert!(capture.matches(&blank));
    }
}

#[test]
fn delta_roundtrips_arbitrary_states() {
    let mut rng = XorShiftRng::new(0x5eed_0004);
    for _ in 0..CASES {
        let old: Vec<u8> = (0..256).map(|_| gen_u8(&mut rng)).collect();
        let mut new = old.clone();
        for _ in 0..gen_index(&mut rng, 64) {
            let index = gen_index(&mut rng, 256);
            new[index] = gen_u8(&mut rng);
        }
        let delta = Delta::diff(&old, &new);
        assert_eq!(delta.apply(&old), new);
    }
}

#[test]
fn transition_is_deterministic_and_dep_tracking_is_transparent() {
    // A small loop program; executing it twice (with and without dependency
    // tracking) must give byte-identical states.
    for iterations in (1i32..60).step_by(7) {
        let program = asc::asm::assemble(&format!(
            "main:\n movi r1, {iterations}\nloop:\n add r2, r2, r1\n sub r1, r1, 1\n cmpi r1, 0\n jne loop\n halt\n"
        )).unwrap();
        let mut a = program.initial_state().unwrap();
        let mut b = program.initial_state().unwrap();
        let mut deps = DepVector::new(b.len_bytes());
        loop {
            let ra = transition(&mut a, None).unwrap();
            let rb = transition(&mut b, Some(&mut deps)).unwrap();
            assert_eq!(ra, rb);
            if ra == StepOutcome::Halted {
                break;
            }
        }
        assert_eq!(a, b);
        assert!(deps.touched() > 0);
    }
}

/// The trajectory cache's grouped value-hash index must be *equivalent* to
/// the retained reference scan (`scan_best_match`): for any population —
/// including replace and FIFO-evict churn, shared and singleton dependency
/// shapes, and with the junk filter on or off — `peek` returns an entry
/// whose instruction count equals the scan's best and whose start set
/// matches the query state, and misses exactly when the scan misses.
#[test]
fn indexed_cache_lookup_is_equivalent_to_reference_scan_under_churn() {
    use asc::core::cache::{CacheEntry, TrajectoryCache};

    let mut rng = XorShiftRng::new(0x5eed_cac8);
    // A small pool of byte positions so shapes recur (grouping) while some
    // entries still get singleton shapes (chaotic junk).
    const POSITION_POOL: [u32; 10] = [4, 9, 17, 40, 64, 65, 100, 128, 200, 255];
    const RIPS: [u32; 2] = [8, 64];

    for case in 0..6 {
        // Tight capacities force eviction churn; odd cases enable the junk
        // filter, shard counts vary across the supported range.
        let capacity = 24 + gen_index(&mut rng, 80);
        let shards = 1 + gen_index(&mut rng, 16);
        let junk_threshold = if case % 2 == 0 { 0 } else { 4 };
        let cache = TrajectoryCache::with_layout(capacity, shards, junk_threshold as u64);

        for _ in 0..400 {
            // Insert a randomized entry: 0–3 positions from the pool
            // (duplicates collapse), values in a small range so queries hit,
            // random length so longer trajectories replace shorter ones.
            let deps: Vec<(u32, u8)> = (0..gen_index(&mut rng, 4))
                .map(|_| {
                    let position = POSITION_POOL[gen_index(&mut rng, POSITION_POOL.len())];
                    (position, (rng.next_u64() % 3) as u8)
                })
                .collect();
            let entry = CacheEntry::new(
                RIPS[gen_index(&mut rng, RIPS.len())],
                asc::tvm::delta::SparseBytes::from_pairs(deps),
                asc::tvm::delta::SparseBytes::from_pairs(vec![(300, gen_u8(&mut rng))]),
                1 + rng.next_u64() % 500,
            );
            cache.insert(entry);

            // Query both paths from a random state and demand equivalence.
            let mut state = StateVector::new(512).unwrap();
            for &position in &POSITION_POOL {
                state.set_byte(position as usize, (rng.next_u64() % 3) as u8);
            }
            for rip in RIPS {
                let indexed = cache.peek(rip, &state);
                let scanned = cache.scan_best_match(rip, &state);
                match (&indexed, &scanned) {
                    (Some(found), Some(reference)) => {
                        assert_eq!(
                            found.instructions, reference.instructions,
                            "case {case}: index and scan disagree on the best entry"
                        );
                        assert!(
                            found.matches(&state),
                            "case {case}: index returned a non-matching entry"
                        );
                    }
                    (None, None) => {}
                    other => panic!("case {case}: hit/miss divergence: {other:?}"),
                }
                assert_eq!(
                    cache.covers(rip, &state),
                    scanned.is_some(),
                    "case {case}: covers() diverged from the scan"
                );
            }
        }
        let stats = cache.stats();
        // The churn must actually have exercised the interesting paths.
        assert!(stats.evicted > 0, "case {case}: no eviction churn ({stats:?})");
        assert!(stats.groups > 3, "case {case}: too few groups ({stats:?})");
        assert!(stats.replaced + stats.duplicates > 0, "case {case}: no replace churn ({stats:?})");
        assert_eq!(
            cache.len() as u64,
            stats.inserted - stats.evicted,
            "case {case}: eviction accounting drifted ({stats:?})"
        );
    }
}
