//! Cross-crate integration tests: every benchmark, assembled by `asc-asm`,
//! executed by `asc-tvm`, accelerated by `asc-core`, must produce exactly the
//! results of its pure-Rust reference implementation — and the scaling
//! machinery must report sane numbers on top of the measured traces.

use asc::core::cluster::{simulate, PlatformProfile, ScalingMode};
use asc::core::config::AscConfig;
use asc::core::runtime::LascRuntime;
use asc::tvm::machine::Machine;
use asc::workloads::registry::{build, Benchmark, Scale};

/// A runtime configuration sized for the `Tiny` workloads used in these
/// tests (the library defaults are tuned for much longer programs).
fn tiny_config() -> AscConfig {
    AscConfig {
        explore_instructions: 5_000,
        evaluation_occurrences: 6,
        evaluation_training: 10,
        candidate_count: 8,
        min_superstep: 50,
        rollout_depth: 8,
        ..AscConfig::default()
    }
}

/// Per-benchmark configuration: the Ising kernel has a long initialisation
/// phase, so its exploration window must reach into the list walk.
fn config_for(benchmark: Benchmark) -> AscConfig {
    match benchmark {
        Benchmark::Ising => AscConfig { explore_instructions: 25_000, ..tiny_config() },
        _ => tiny_config(),
    }
}

/// The Ising `Tiny` preset is too short to leave room for acceleration after
/// recognition, so integration tests run it at `Small` scale.
fn scale_for(benchmark: Benchmark) -> Scale {
    match benchmark {
        Benchmark::Ising => Scale::Small,
        _ => Scale::Tiny,
    }
}

#[test]
fn every_benchmark_runs_sequentially_and_verifies() {
    for benchmark in Benchmark::ALL {
        let workload = build(benchmark, Scale::Tiny).unwrap();
        let mut machine = Machine::load(&workload.program).unwrap();
        machine.run_to_halt(200_000_000).unwrap();
        assert!(workload.verify(machine.state()), "{benchmark} sequential run failed to verify");
    }
}

#[test]
fn accelerated_runs_preserve_results_for_every_benchmark() {
    for benchmark in Benchmark::ALL {
        let workload = build(benchmark, scale_for(benchmark)).unwrap();
        let runtime = LascRuntime::new(config_for(benchmark)).unwrap();
        let report = runtime.accelerate(&workload.program).unwrap();
        assert!(report.halted, "{benchmark} did not finish under acceleration");
        assert!(
            workload.verify(&report.final_state),
            "{benchmark} accelerated run changed the program's results"
        );
    }
}

#[test]
fn measured_traces_scale_on_the_cluster_model() {
    let workload = build(Benchmark::Collatz, Scale::Tiny).unwrap();
    let runtime = LascRuntime::new(tiny_config()).unwrap();
    let report = runtime.measure(&workload.program).unwrap();
    assert!(workload.verify(&report.final_state));
    assert!(report.one_step_accuracy() > 0.5);

    let server = PlatformProfile::server_32core();
    let p1 = simulate(&report, &server, ScalingMode::Lasc, 1);
    let p8 = simulate(&report, &server, ScalingMode::Lasc, 8);
    let p32 = simulate(&report, &server, ScalingMode::Lasc, 32);
    assert_eq!(p1.scaling, 1.0);
    // With Tiny supersteps (~100 instructions) the per-hit query cost bounds
    // scaling well below the core count; larger scales use longer supersteps.
    assert!(p8.scaling > 1.4, "{p8:?}");
    assert!(p32.scaling >= p8.scaling * 0.8, "{p32:?} vs {p8:?}");
    // Oracle and cycle-count idealisations can only help.
    let oracle = simulate(&report, &server, ScalingMode::Oracle, 32);
    let cycle = simulate(&report, &server, ScalingMode::CycleCount, 32);
    assert!(oracle.scaling + 1e-9 >= p32.scaling);
    assert!(cycle.scaling + 1e-9 >= p32.scaling);
}

#[test]
fn fast_forwarding_skips_a_meaningful_fraction_of_work() {
    let workload = build(Benchmark::Collatz, Scale::Tiny).unwrap();
    let runtime = LascRuntime::new(tiny_config()).unwrap();
    let report = runtime.accelerate(&workload.program).unwrap();
    assert!(workload.verify(&report.final_state));
    assert!(
        report.fast_forwarded_instructions * 2 > report.executed_instructions,
        "expected substantial fast-forwarding, got {} vs {} executed",
        report.fast_forwarded_instructions,
        report.executed_instructions
    );
}
