//! End-to-end tests of the distributed trajectory-cache tier: snapshot
//! warm starts, the TCP cache peer protocol (GET / PUT / STATS /
//! SNAPSHOT), and the degrade-to-local-only failure model — all through
//! the public `asc` facade, over real sockets and real files.

use std::path::PathBuf;

use asc::core::cache::{CacheEntry, TrajectoryCache};
use asc::core::config::AscConfig;
use asc::core::remote::{codec, snapshot, CachePeer};
use asc::core::runtime::LascRuntime;
use asc::learn::rng::{Rng, XorShiftRng};
use asc::tvm::delta::SparseBytes;
use asc::tvm::state::StateVector;
use asc::workloads::registry::{build, Benchmark, Scale};

/// A per-test scratch path under the system temp dir; unique per process
/// and per label so parallel test threads never collide.
fn scratch_path(label: &str) -> PathBuf {
    std::env::temp_dir().join(format!("asc-remote-{}-{label}", std::process::id()))
}

fn tiny_config() -> AscConfig {
    AscConfig {
        explore_instructions: 5_000,
        evaluation_occurrences: 6,
        evaluation_training: 10,
        candidate_count: 8,
        min_superstep: 50,
        rollout_depth: 8,
        ..AscConfig::default()
    }
}

fn gen_index(rng: &mut XorShiftRng, bound: usize) -> usize {
    (rng.next_u64() % bound as u64) as usize
}

/// Fills a cache with randomized grouped/singleton entries (the same shape
/// churn as the cache property tests) and returns it.
fn populated_cache(rng: &mut XorShiftRng, inserts: usize) -> TrajectoryCache {
    const POSITION_POOL: [u32; 10] = [4, 9, 17, 40, 64, 65, 100, 128, 200, 255];
    const RIPS: [u32; 2] = [8, 64];
    let cache = TrajectoryCache::with_junk_threshold(4096, 0);
    for _ in 0..inserts {
        let deps: Vec<(u32, u8)> = (0..gen_index(rng, 4))
            .map(|_| {
                (POSITION_POOL[gen_index(rng, POSITION_POOL.len())], (rng.next_u64() % 3) as u8)
            })
            .collect();
        cache.insert(CacheEntry::new(
            RIPS[gen_index(rng, RIPS.len())],
            SparseBytes::from_pairs(deps),
            SparseBytes::from_pairs(vec![(300, rng.next_u64() as u8)]),
            1 + rng.next_u64() % 500,
        ));
    }
    cache
}

/// Random probe states over the pool positions, queried against both caches
/// through the indexed path *and* the reference scan: a snapshot round trip
/// (or a peer transfer) must make the copy answer every probe exactly like
/// the original.
fn assert_lookup_equivalent(original: &TrajectoryCache, copy: &TrajectoryCache, cases: usize) {
    const POSITION_POOL: [u32; 10] = [4, 9, 17, 40, 64, 65, 100, 128, 200, 255];
    let mut rng = XorShiftRng::new(0x5eed_9e9e);
    for case in 0..cases {
        let mut state = StateVector::new(512).unwrap();
        for &position in &POSITION_POOL {
            state.set_byte(position as usize, (rng.next_u64() % 3) as u8);
        }
        for rip in [8u32, 64] {
            let live = original.scan_best_match(rip, &state);
            let restored = copy.scan_best_match(rip, &state);
            assert_eq!(
                live.as_ref().map(|e| e.instructions),
                restored.as_ref().map(|e| e.instructions),
                "case {case}: restored cache diverged from the original on the reference scan"
            );
            let indexed = copy.peek(rip, &state);
            assert_eq!(
                indexed.map(|e| e.instructions),
                restored.map(|e| e.instructions),
                "case {case}: restored cache's index diverged from its own scan"
            );
        }
    }
}

/// Snapshot save → load must reproduce identical lookup results on a fresh
/// cache — indexed path and reference scan — and round-trip every entry.
#[test]
fn snapshot_save_then_load_reproduces_identical_lookup_results() {
    let mut rng = XorShiftRng::new(0x5eed_55aa);
    let cache = populated_cache(&mut rng, 600);
    let path = scratch_path("snapshot-roundtrip");
    let saved = snapshot::save(&cache, &path).unwrap();
    assert_eq!(saved, cache.len() as u64, "saved count must equal live entries");

    let restored = TrajectoryCache::with_junk_threshold(4096, 0);
    let load = snapshot::load(&restored, &path).unwrap();
    std::fs::remove_file(&path).ok();
    assert!(load.complete, "clean snapshot must end with SnapshotEnd");
    assert_eq!(load.rejected, 0, "clean snapshot must reject nothing");
    assert_eq!(load.loaded, saved);
    assert_eq!(restored.len(), cache.len());
    // The header carried the saving cache's counters.
    assert_eq!(load.saved_stats.inserted, cache.stats().inserted);

    assert_lookup_equivalent(&cache, &restored, 200);
}

/// A truncated snapshot keeps everything decoded before the damage and
/// reports the load as incomplete; a bit-flipped entry is skipped, counted,
/// and never applied.
#[test]
fn damaged_snapshots_degrade_to_partial_loads_never_bad_entries() {
    let mut rng = XorShiftRng::new(0x5eed_d44a);
    let cache = populated_cache(&mut rng, 120);
    let path = scratch_path("snapshot-damage");
    snapshot::save(&cache, &path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();

    // Truncate at an arbitrary point past the header.
    let cut = bytes.len() / 2;
    let truncated_path = scratch_path("snapshot-truncated");
    std::fs::write(&truncated_path, &bytes[..cut]).unwrap();
    let partial = TrajectoryCache::with_junk_threshold(4096, 0);
    let load = snapshot::load(&partial, &truncated_path).unwrap();
    std::fs::remove_file(&truncated_path).ok();
    assert!(!load.complete, "a truncated stream must not report complete");
    assert!(load.rejected >= 1, "truncation must be counted");
    assert!(load.loaded < cache.len() as u64);
    assert_eq!(partial.len() as u64, load.loaded);

    // Flip one bit somewhere in the body: at most one entry may be lost,
    // and nothing unverified may be applied.
    let mut flipped = bytes.clone();
    let target = bytes.len() / 3;
    flipped[target] ^= 0x10;
    let flipped_path = scratch_path("snapshot-bitflip");
    std::fs::write(&flipped_path, &flipped).unwrap();
    let survivor = TrajectoryCache::with_junk_threshold(4096, 0);
    let load = snapshot::load(&survivor, &flipped_path).unwrap();
    std::fs::remove_file(&flipped_path).ok();
    assert!(
        load.rejected >= 1 || load.loaded == cache.len() as u64,
        "a flipped bit must be rejected unless it landed in dead space"
    );
    assert!(load.loaded <= cache.len() as u64);
}

/// The peer protocol end-to-end over a real socket: PUT entries in through
/// the runtime-facing codec, read them back via SNAPSHOT, and fetch the
/// peer's counters via STATS — all against one `CachePeer`.
#[test]
fn cache_peer_answers_put_snapshot_and_stats_over_tcp() {
    use std::io::Write;

    let peer = CachePeer::bind("127.0.0.1:0", 4096).unwrap();
    let addr = peer.local_addr();
    let mut rng = XorShiftRng::new(0x5eed_7cb1);
    let source = populated_cache(&mut rng, 300);

    // PUT every entry over one connection (the write-behind wire path).
    let mut conn = std::net::TcpStream::connect(addr).unwrap();
    let mut sent = 0u64;
    source.for_each_entry(|entry| {
        let framed = codec::encode_frame(codec::FrameKind::Put, &codec::encode_entry(entry));
        conn.write_all(&framed).unwrap();
        sent += 1;
    });
    // STATS on the same connection doubles as a flush barrier: the peer
    // processes frames in order, so the reply proves every PUT landed.
    conn.write_all(&codec::encode_frame(codec::FrameKind::StatsRequest, &[])).unwrap();
    let reply = codec::read_frame(&mut conn).unwrap().expect("stats reply");
    assert_eq!(reply.kind, codec::FrameKind::StatsReply);
    let stats = asc::core::CacheStats::from_le_bytes(&reply.payload).expect("decodable stats");
    assert_eq!(stats.inserted, sent, "peer must have inserted every PUT");
    assert_eq!(peer.len(), source.len());
    assert_eq!(peer.frames_rejected(), 0);

    // SNAPSHOT the store back out and demand lookup equivalence.
    let restored = TrajectoryCache::with_junk_threshold(4096, 0);
    conn.write_all(&codec::encode_frame(codec::FrameKind::SnapshotRequest, &[])).unwrap();
    let mut reader = std::io::BufReader::new(conn);
    let header = codec::read_frame(&mut reader).unwrap().expect("snapshot header");
    assert_eq!(header.kind, codec::FrameKind::SnapshotHeader);
    loop {
        let frame = codec::read_frame(&mut reader).unwrap().expect("snapshot frame");
        match frame.kind {
            codec::FrameKind::Entry => {
                restored.insert(codec::decode_entry(&frame.payload).expect("verified entry"));
            }
            codec::FrameKind::SnapshotEnd => break,
            other => panic!("unexpected frame in snapshot stream: {other:?}"),
        }
    }
    assert_eq!(restored.len(), source.len());
    assert_lookup_equivalent(&source, &restored, 200);

    // A garbage frame costs the connection but is counted, and the peer
    // keeps serving new connections afterwards.
    let mut bad = std::net::TcpStream::connect(addr).unwrap();
    bad.write_all(b"NOPE-this-is-not-a-frame").unwrap();
    let mut again = std::net::TcpStream::connect(addr).unwrap();
    again.write_all(&codec::encode_frame(codec::FrameKind::StatsRequest, &[])).unwrap();
    let reply = codec::read_frame(&mut again).unwrap().expect("peer must still serve");
    assert_eq!(reply.kind, codec::FrameKind::StatsReply);
    // The bad connection's rejection may land after the good reply; poll
    // briefly rather than racing the handler thread.
    for _ in 0..100 {
        if peer.frames_rejected() > 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    assert!(peer.frames_rejected() > 0, "the garbage frame was never counted");
    assert_eq!(peer.contained_panics(), 0);
    peer.shutdown();
}

/// Warm start through the snapshot tier, end to end through `accelerate`:
/// run A saves its cache; run B loads it under a first-window instruction
/// budget and must reach at least 80% of A's final hit rate — the ISSUE's
/// acceptance criterion, in-process (CI runs the same check across two
/// processes and a TCP peer).
#[test]
fn snapshot_warm_start_reaches_eighty_percent_of_final_hit_rate() {
    let workload = build(Benchmark::Collatz, Scale::Tiny).unwrap();
    let path = scratch_path("warm-start");

    let mut config_a = tiny_config();
    config_a.remote.enabled = true;
    config_a.remote.snapshot_save = Some(path.clone());
    let report_a = LascRuntime::new(config_a).unwrap().accelerate(&workload.program).unwrap();
    assert!(report_a.halted);
    let remote_a = report_a.remote.expect("remote tier was enabled");
    assert!(remote_a.snapshot_saved > 0, "run A saved nothing ({remote_a:?})");
    let stats_a = report_a.cache_stats;
    let rate_a = stats_a.hits as f64 / stats_a.queries.max(1) as f64;
    assert!(rate_a > 0.1, "run A never warmed up (hit rate {rate_a})");

    // Run B: same program, cache pre-warmed from disk, budget capped to the
    // first ~20% of A's instruction volume — the window where a cold run is
    // still missing almost everywhere.
    let mut config_b = tiny_config();
    config_b.remote.enabled = true;
    config_b.remote.snapshot_load = Some(path.clone());
    config_b.instruction_budget = (report_a.total_instructions / 5).max(50_000);
    let report_b = LascRuntime::new(config_b).unwrap().accelerate(&workload.program).unwrap();
    std::fs::remove_file(&path).ok();
    let remote_b = report_b.remote.expect("remote tier was enabled");
    assert!(remote_b.snapshot_loaded > 0, "run B loaded nothing ({remote_b:?})");
    let stats_b = report_b.cache_stats;
    let rate_b = stats_b.hits as f64 / stats_b.queries.max(1) as f64;
    assert!(
        rate_b >= 0.8 * rate_a,
        "warm start too cold: first-window rate {rate_b:.3} vs final rate {rate_a:.3}"
    );

    // And a cold run over the same window really is colder — the warm start
    // must be attributable to the snapshot, not to the window being easy.
    let mut config_cold = tiny_config();
    config_cold.instruction_budget = (report_a.total_instructions / 5).max(50_000);
    let report_cold = LascRuntime::new(config_cold).unwrap().accelerate(&workload.program).unwrap();
    let stats_cold = report_cold.cache_stats;
    let rate_cold = stats_cold.hits as f64 / stats_cold.queries.max(1) as f64;
    assert!(
        rate_b > rate_cold,
        "snapshot load made no difference (warm {rate_b:.3} vs cold {rate_cold:.3})"
    );
}

/// A configured-but-unreachable peer must cost at most the failure budget
/// and then degrade to local-only — same final state, `degraded` reported.
#[test]
fn dead_peer_degrades_to_local_only_with_identical_results() {
    // Bind and immediately drop a listener: the port is real but nobody
    // accepts, so connects fail fast.
    let dead_addr = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap()
    };
    let workload = build(Benchmark::Collatz, Scale::Tiny).unwrap();
    let baseline = LascRuntime::new(tiny_config()).unwrap().accelerate(&workload.program).unwrap();

    let mut config = tiny_config();
    config.remote.enabled = true;
    config.remote.peer = Some(dead_addr.to_string());
    config.remote.deadline_ms = 5;
    config.remote.retry_backoff_ms = 1;
    config.remote.max_retries = 2;
    let report = LascRuntime::new(config).unwrap().accelerate(&workload.program).unwrap();

    assert!(report.halted);
    assert_eq!(
        baseline.final_state.as_bytes(),
        report.final_state.as_bytes(),
        "a dead peer changed the program result"
    );
    assert!(workload.verify(&report.final_state));
    let remote = report.remote.expect("remote tier was enabled");
    assert!(remote.degraded, "failure budget spent but not reported ({remote:?})");
    assert!(remote.remote_timeouts > 0, "no failed operation was counted ({remote:?})");
    assert_eq!(remote.remote_hits, 0);
}
