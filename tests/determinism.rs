//! Cross-thread determinism: the paper's core invariant is that speculation
//! can only ever *skip* work, never change results. Running `accelerate`
//! with a pool of concurrent speculation workers must therefore produce a
//! `final_state` bit-for-bit identical to the inline (workers = 0) run — on
//! every benchmark, despite the nondeterministic scheduling of worker
//! inserts into the trajectory cache. The continuous-speculation planner
//! only chooses *which* speculations run, so planner on vs. off must be
//! equally bit-identical.

use asc::core::config::AscConfig;
use asc::core::runtime::LascRuntime;
use asc::workloads::registry::{build, Benchmark, Scale};

fn tiny_config() -> AscConfig {
    AscConfig {
        explore_instructions: 5_000,
        evaluation_occurrences: 6,
        evaluation_training: 10,
        candidate_count: 8,
        min_superstep: 50,
        rollout_depth: 8,
        ..AscConfig::default()
    }
}

fn config_for(benchmark: Benchmark, workers: usize) -> AscConfig {
    let base = match benchmark {
        // Ising's init phase is long; the exploration window must reach the
        // list walk (same sizing as the end-to-end tests).
        Benchmark::Ising => AscConfig { explore_instructions: 25_000, ..tiny_config() },
        _ => tiny_config(),
    };
    AscConfig { workers, ..base }
}

fn scale_for(benchmark: Benchmark) -> Scale {
    match benchmark {
        Benchmark::Ising => Scale::Small,
        _ => Scale::Tiny,
    }
}

/// `workers = 4` must match `workers = 0` bit-for-bit on the final state.
#[test]
fn parallel_speculation_is_bit_identical_to_inline_on_every_benchmark() {
    for benchmark in Benchmark::ALL {
        let workload = build(benchmark, scale_for(benchmark)).unwrap();

        let inline_report = LascRuntime::new(config_for(benchmark, 0))
            .unwrap()
            .accelerate(&workload.program)
            .unwrap();
        let parallel_report = LascRuntime::new(config_for(benchmark, 4))
            .unwrap()
            .accelerate(&workload.program)
            .unwrap();

        assert!(inline_report.halted, "{benchmark}: inline run did not halt");
        assert!(parallel_report.halted, "{benchmark}: parallel run did not halt");
        assert_eq!(
            inline_report.final_state.as_bytes(),
            parallel_report.final_state.as_bytes(),
            "{benchmark}: workers = 4 diverged from inline execution"
        );
        // Both runs also verify against the pure-Rust reference.
        assert!(
            workload.verify(&parallel_report.final_state),
            "{benchmark}: parallel run produced a wrong result"
        );
        // The pool really ran: work was dispatched to workers.
        let stats = parallel_report.speculation.expect("workers > 0 must report pool stats");
        assert!(stats.dispatched > 0, "{benchmark}: no speculation dispatched ({stats:?})");
        assert_eq!(
            stats.dispatched,
            stats.completed + stats.faulted + stats.exhausted,
            "{benchmark}: pool shutdown lost jobs ({stats:?})"
        );
    }
}

/// Parallel speculation must also be identical to plain sequential
/// execution, not merely to the inline-speculation mode.
#[test]
fn parallel_speculation_matches_plain_sequential_execution() {
    use asc::tvm::machine::Machine;
    let workload = build(Benchmark::Collatz, Scale::Tiny).unwrap();

    let mut sequential = Machine::load(&workload.program).unwrap();
    sequential.run_to_halt(200_000_000).unwrap();

    let report = LascRuntime::new(config_for(Benchmark::Collatz, 4))
        .unwrap()
        .accelerate(&workload.program)
        .unwrap();
    assert!(report.halted);
    assert_eq!(
        sequential.state().as_bytes(),
        report.final_state.as_bytes(),
        "accelerated final state diverged from sequential execution"
    );
}

/// The planner thread decides *which* speculations run, never what the main
/// thread computes: with the planner on vs. off (miss-driven dispatch), the
/// final state must stay bit-identical on every benchmark — and both must
/// verify against the pure-Rust reference.
#[test]
fn planner_on_and_off_are_bit_identical_on_every_benchmark() {
    for benchmark in Benchmark::ALL {
        let workload = build(benchmark, scale_for(benchmark)).unwrap();

        let mut planner_off = config_for(benchmark, 4);
        planner_off.planner.enabled = false;
        let mut planner_on = config_for(benchmark, 4);
        planner_on.planner.enabled = true;

        let off_report =
            LascRuntime::new(planner_off).unwrap().accelerate(&workload.program).unwrap();
        let on_report =
            LascRuntime::new(planner_on).unwrap().accelerate(&workload.program).unwrap();

        assert!(off_report.halted, "{benchmark}: miss-driven run did not halt");
        assert!(on_report.halted, "{benchmark}: planner run did not halt");
        assert_eq!(
            off_report.final_state.as_bytes(),
            on_report.final_state.as_bytes(),
            "{benchmark}: planner on diverged from planner off"
        );
        assert!(
            workload.verify(&on_report.final_state),
            "{benchmark}: planner run produced a wrong result"
        );
        // The planner really ran and fed the pool.
        assert!(off_report.planner.is_none(), "{benchmark}: miss-driven run reported a planner");
        let stats = on_report.planner.expect("planner on must report planner stats");
        assert!(stats.occurrences > 0, "{benchmark}: planner saw no occurrences ({stats:?})");
        let pool = on_report.speculation.expect("planner run must report pool stats");
        assert_eq!(
            pool.dispatched,
            pool.completed + pool.faulted + pool.exhausted,
            "{benchmark}: planner-fed pool lost jobs ({pool:?})"
        );
    }
}

/// Worker counts beyond the rollout width still behave (threads idle but
/// nothing deadlocks or diverges).
#[test]
fn oversubscribed_worker_pool_is_safe() {
    let workload = build(Benchmark::Collatz, Scale::Tiny).unwrap();
    let inline_report = LascRuntime::new(config_for(Benchmark::Collatz, 0))
        .unwrap()
        .accelerate(&workload.program)
        .unwrap();
    let report = LascRuntime::new(config_for(Benchmark::Collatz, 16))
        .unwrap()
        .accelerate(&workload.program)
        .unwrap();
    assert!(report.halted);
    assert_eq!(inline_report.final_state.as_bytes(), report.final_state.as_bytes());
}
