//! Cross-thread determinism: the paper's core invariant is that speculation
//! can only ever *skip* work, never change results. Running `accelerate`
//! with a pool of concurrent speculation workers must therefore produce a
//! `final_state` bit-for-bit identical to the inline (workers = 0) run — on
//! every benchmark, despite the nondeterministic scheduling of worker
//! inserts into the trajectory cache. The continuous-speculation planner
//! only chooses *which* speculations run, so planner on vs. off must be
//! equally bit-identical.

use asc::core::config::AscConfig;
use asc::core::runtime::LascRuntime;
use asc::workloads::registry::{build, Benchmark, Scale};

fn tiny_config() -> AscConfig {
    AscConfig {
        explore_instructions: 5_000,
        evaluation_occurrences: 6,
        evaluation_training: 10,
        candidate_count: 8,
        min_superstep: 50,
        rollout_depth: 8,
        ..AscConfig::default()
    }
}

fn config_for(benchmark: Benchmark, workers: usize) -> AscConfig {
    let base = match benchmark {
        // Ising's init phase is long; the exploration window must reach the
        // list walk (same sizing as the end-to-end tests).
        Benchmark::Ising => AscConfig { explore_instructions: 25_000, ..tiny_config() },
        _ => tiny_config(),
    };
    AscConfig { workers, ..base }
}

fn scale_for(benchmark: Benchmark) -> Scale {
    match benchmark {
        Benchmark::Ising => Scale::Small,
        _ => Scale::Tiny,
    }
}

/// `workers = 4` must match `workers = 0` bit-for-bit on the final state.
#[test]
fn parallel_speculation_is_bit_identical_to_inline_on_every_benchmark() {
    for benchmark in Benchmark::ALL {
        let workload = build(benchmark, scale_for(benchmark)).unwrap();

        let inline_report = LascRuntime::new(config_for(benchmark, 0))
            .unwrap()
            .accelerate(&workload.program)
            .unwrap();
        let parallel_report = LascRuntime::new(config_for(benchmark, 4))
            .unwrap()
            .accelerate(&workload.program)
            .unwrap();

        assert!(inline_report.halted, "{benchmark}: inline run did not halt");
        assert!(parallel_report.halted, "{benchmark}: parallel run did not halt");
        assert_eq!(
            inline_report.final_state.as_bytes(),
            parallel_report.final_state.as_bytes(),
            "{benchmark}: workers = 4 diverged from inline execution"
        );
        // Both runs also verify against the pure-Rust reference.
        assert!(
            workload.verify(&parallel_report.final_state),
            "{benchmark}: parallel run produced a wrong result"
        );
        // The pool really ran: work was dispatched to workers.
        let stats = parallel_report.speculation.expect("workers > 0 must report pool stats");
        assert!(stats.dispatched > 0, "{benchmark}: no speculation dispatched ({stats:?})");
        assert_eq!(
            stats.dispatched,
            stats.completed
                + stats.faulted
                + stats.exhausted
                + stats.panicked
                + stats.deadline_killed,
            "{benchmark}: pool shutdown lost jobs ({stats:?})"
        );
    }
}

/// Parallel speculation must also be identical to plain sequential
/// execution, not merely to the inline-speculation mode.
#[test]
fn parallel_speculation_matches_plain_sequential_execution() {
    use asc::tvm::machine::Machine;
    let workload = build(Benchmark::Collatz, Scale::Tiny).unwrap();

    let mut sequential = Machine::load(&workload.program).unwrap();
    sequential.run_to_halt(200_000_000).unwrap();

    let report = LascRuntime::new(config_for(Benchmark::Collatz, 4))
        .unwrap()
        .accelerate(&workload.program)
        .unwrap();
    assert!(report.halted);
    assert_eq!(
        sequential.state().as_bytes(),
        report.final_state.as_bytes(),
        "accelerated final state diverged from sequential execution"
    );
}

/// The planner thread decides *which* speculations run, never what the main
/// thread computes: with the planner on vs. off (miss-driven dispatch), the
/// final state must stay bit-identical on every benchmark — and both must
/// verify against the pure-Rust reference.
#[test]
fn planner_on_and_off_are_bit_identical_on_every_benchmark() {
    for benchmark in Benchmark::ALL {
        let workload = build(benchmark, scale_for(benchmark)).unwrap();

        let mut planner_off = config_for(benchmark, 4);
        planner_off.planner.enabled = false;
        let mut planner_on = config_for(benchmark, 4);
        planner_on.planner.enabled = true;

        let off_report =
            LascRuntime::new(planner_off).unwrap().accelerate(&workload.program).unwrap();
        let on_report =
            LascRuntime::new(planner_on).unwrap().accelerate(&workload.program).unwrap();

        assert!(off_report.halted, "{benchmark}: miss-driven run did not halt");
        assert!(on_report.halted, "{benchmark}: planner run did not halt");
        assert_eq!(
            off_report.final_state.as_bytes(),
            on_report.final_state.as_bytes(),
            "{benchmark}: planner on diverged from planner off"
        );
        assert!(
            workload.verify(&on_report.final_state),
            "{benchmark}: planner run produced a wrong result"
        );
        // The planner really ran and fed the pool.
        assert!(off_report.planner.is_none(), "{benchmark}: miss-driven run reported a planner");
        let stats = on_report.planner.expect("planner on must report planner stats");
        assert!(stats.occurrences > 0, "{benchmark}: planner saw no occurrences ({stats:?})");
        let pool = on_report.speculation.expect("planner run must report pool stats");
        assert_eq!(
            pool.dispatched,
            pool.completed + pool.faulted + pool.exhausted + pool.panicked + pool.deadline_killed,
            "{benchmark}: planner-fed pool lost jobs ({pool:?})"
        );
    }
}

/// Worker counts beyond the rollout width still behave (threads idle but
/// nothing deadlocks or diverges).
#[test]
fn oversubscribed_worker_pool_is_safe() {
    let workload = build(Benchmark::Collatz, Scale::Tiny).unwrap();
    let inline_report = LascRuntime::new(config_for(Benchmark::Collatz, 0))
        .unwrap()
        .accelerate(&workload.program)
        .unwrap();
    let report = LascRuntime::new(config_for(Benchmark::Collatz, 16))
        .unwrap()
        .accelerate(&workload.program)
        .unwrap();
    assert!(report.halted);
    assert_eq!(inline_report.final_state.as_bytes(), report.final_state.as_bytes());
}

/// The remote tier shares trajectories between runs, never results: peer
/// hits pass the same `matches` + checksum guards as local hits, so two
/// runtimes sharing one cache peer must stay bit-identical to plain inline
/// execution on every benchmark — and killing the peer mid-run may only
/// cost speed, bounded by the configured deadline and failure budget.
mod remote {
    use super::*;
    use asc::core::remote::CachePeer;

    fn remote_config(benchmark: Benchmark, peer: &CachePeer) -> AscConfig {
        let mut config = config_for(benchmark, 4);
        config.remote.enabled = true;
        config.remote.peer = Some(peer.local_addr().to_string());
        config.remote.deadline_ms = 50;
        config.remote.retry_backoff_ms = 1;
        config.remote.max_retries = 3;
        config
    }

    /// Two accelerated runs sharing one peer — run 1 populates it, run 2
    /// probes it — must both stay bit-identical to single-process inline
    /// execution on every benchmark.
    #[test]
    fn two_runs_sharing_one_peer_stay_bit_identical_on_every_benchmark() {
        for benchmark in Benchmark::ALL {
            let workload = build(benchmark, scale_for(benchmark)).unwrap();
            let inline_report = LascRuntime::new(config_for(benchmark, 0))
                .unwrap()
                .accelerate(&workload.program)
                .unwrap();
            let peer = CachePeer::bind("127.0.0.1:0", 1 << 16).unwrap();

            let first = LascRuntime::new(remote_config(benchmark, &peer))
                .unwrap()
                .accelerate(&workload.program)
                .unwrap();
            let second = LascRuntime::new(remote_config(benchmark, &peer))
                .unwrap()
                .accelerate(&workload.program)
                .unwrap();

            for (label, report) in [("first", &first), ("second", &second)] {
                assert!(report.halted, "{benchmark}: {label} shared-peer run did not halt");
                assert_eq!(
                    inline_report.final_state.as_bytes(),
                    report.final_state.as_bytes(),
                    "{benchmark}: {label} shared-peer run diverged from inline execution"
                );
                assert!(
                    workload.verify(&report.final_state),
                    "{benchmark}: {label} shared-peer run produced a wrong result"
                );
            }
            // The tier really ran: run 1 streamed inserts into the peer, and
            // run 2 found them (bulk transfer at connect, and/or GET hits).
            let first_remote = first.remote.expect("remote tier was enabled");
            assert!(
                first_remote.puts_streamed > 0,
                "{benchmark}: nothing streamed to the peer ({first_remote:?})"
            );
            assert!(!peer.is_empty(), "{benchmark}: peer stored nothing");
            let second_remote = second.remote.expect("remote tier was enabled");
            assert!(
                second_remote.snapshot_loaded > 0 || second_remote.remote_hits > 0,
                "{benchmark}: second run never benefited from the peer ({second_remote:?})"
            );
            assert_eq!(peer.contained_panics(), 0, "{benchmark}: a peer handler panicked");
            peer.shutdown();
        }
    }

    /// Killing the peer mid-run degrades the run to local-only: the result
    /// stays bit-identical and the tier reports the degradation. The kill
    /// lands while the run is in flight (after a short delay on another
    /// thread), so the client's failure budget — not a hang — must bound
    /// the damage.
    #[test]
    fn peer_killed_mid_run_degrades_to_local_only() {
        let benchmark = Benchmark::Collatz;
        let workload = build(benchmark, scale_for(benchmark)).unwrap();
        let inline_report = LascRuntime::new(config_for(benchmark, 0))
            .unwrap()
            .accelerate(&workload.program)
            .unwrap();

        let peer = CachePeer::bind("127.0.0.1:0", 1 << 16).unwrap();
        let mut config = remote_config(benchmark, &peer);
        config.remote.deadline_ms = 20;
        let killer = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            peer.shutdown();
        });
        let report = LascRuntime::new(config).unwrap().accelerate(&workload.program).unwrap();
        killer.join().unwrap();

        assert!(report.halted, "peer kill stalled the run");
        assert_eq!(
            inline_report.final_state.as_bytes(),
            report.final_state.as_bytes(),
            "peer kill changed the program result"
        );
        assert!(workload.verify(&report.final_state));
        // Whether the tier noticed depends on timing (the run may finish
        // first); what must never happen is an unbounded stall or a wrong
        // result, both asserted above. When the kill did land, the failure
        // accounting must show it.
        let remote = report.remote.expect("remote tier was enabled");
        if remote.degraded {
            assert!(
                remote.remote_timeouts > 0 || remote.puts_dropped > 0,
                "degraded without any counted failure ({remote:?})"
            );
        }
    }

    /// Corrupt-frame soak (`--features fault-inject`): a peer that flips a
    /// bit in *every* entry-carrying reply can only cost speed — each
    /// corrupted frame is rejected by the client's checksum verification
    /// and counted, never applied, and the final state stays bit-identical
    /// to inline execution. Rides the CI fault-soak job alongside the
    /// worker-panic campaign.
    #[cfg(feature = "fault-inject")]
    #[test]
    fn corrupting_peer_frames_costs_rejections_never_results() {
        use asc::core::FaultPlan;
        use std::sync::Arc;

        let seed = std::env::var("ASC_FAULT_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(1);
        let benchmark = Benchmark::Collatz;
        let workload = build(benchmark, scale_for(benchmark)).unwrap();
        let inline_report = LascRuntime::new(config_for(benchmark, 0))
            .unwrap()
            .accelerate(&workload.program)
            .unwrap();

        let faults = Arc::new(asc::core::fault::FaultState::new(FaultPlan {
            seed,
            entry_corruption_rate: 1.0,
            ..FaultPlan::default()
        }));
        let peer =
            asc::core::remote::CachePeer::bind_faulty("127.0.0.1:0", 1 << 16, faults).unwrap();

        // Run 1 populates the peer (PUTs are client → peer, uncorrupted).
        let populate = LascRuntime::new(remote_config(benchmark, &peer))
            .unwrap()
            .accelerate(&workload.program)
            .unwrap();
        assert!(populate.remote.expect("tier enabled").puts_streamed > 0);
        assert!(!peer.is_empty(), "nothing to corrupt: peer stored no entries");

        // Run 2 reads from it: every entry-carrying reply is bit-flipped.
        let victim = LascRuntime::new(remote_config(benchmark, &peer))
            .unwrap()
            .accelerate(&workload.program)
            .unwrap();
        assert!(victim.halted);
        assert_eq!(
            inline_report.final_state.as_bytes(),
            victim.final_state.as_bytes(),
            "a corrupted frame changed the program result"
        );
        assert!(workload.verify(&victim.final_state));
        let remote = victim.remote.expect("remote tier was enabled");
        assert!(
            remote.frames_rejected + remote.snapshot_rejected > 0,
            "total corruption produced no rejections ({remote:?})"
        );
        assert_eq!(
            remote.remote_hits, 0,
            "a corrupted entry survived checksum verification ({remote:?})"
        );
        peer.shutdown();
    }
}

/// Dispatch economics: the value model decides only *which* speculations
/// run, so gating on vs. off must leave `final_state` bit-identical in
/// every execution mode — inline, miss-driven workers and planner — on
/// every benchmark. Suppression is never a correctness event: a suppressed
/// dispatch just means the main thread executes that superstep itself,
/// exactly as it would on any cache miss.
///
/// The CI determinism job collects per-benchmark `EconomicsStats` as JSON
/// lines from the file named by `ASC_ECON_OUT` (uploaded as
/// `ECON_stats.json` and summarized into the step summary).
mod economics {
    use super::*;
    use asc::core::economics::EconomicsStats;

    fn emit_econ(benchmark: Benchmark, mode: &str, stats: &EconomicsStats) {
        let Ok(path) = std::env::var("ASC_ECON_OUT") else { return };
        use std::io::Write;
        let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(path) else {
            return;
        };
        let _ = writeln!(
            file,
            "{{\"benchmark\":\"{benchmark}\",\"mode\":\"{mode}\",\
             \"considered\":{},\"dispatched\":{},\"suppressed\":{},\"probes\":{},\
             \"lookups\":{},\"hits\":{},\"realized_hit_rate\":{:.6},\
             \"expected_value\":{:.1},\"suppressed_cost\":{:.1},\"last_horizon\":{}}}",
            stats.considered,
            stats.dispatched,
            stats.suppressed,
            stats.probes,
            stats.lookups,
            stats.hits,
            stats.realized_hit_rate,
            stats.expected_value,
            stats.suppressed_cost,
            stats.last_horizon,
        );
    }

    /// Gating on vs. off, across all three execution modes, on every
    /// benchmark: the final state never moves.
    #[test]
    fn gating_on_and_off_are_bit_identical_in_every_mode() {
        for benchmark in Benchmark::ALL {
            let workload = build(benchmark, scale_for(benchmark)).unwrap();
            for (mode, workers, planner) in
                [("inline", 0usize, false), ("workers", 4, false), ("planner", 4, true)]
            {
                let mut gated = config_for(benchmark, workers);
                gated.planner.enabled = planner;
                gated.economics.enabled = true;
                let mut ungated = gated.clone();
                ungated.economics.enabled = false;

                let gated_report =
                    LascRuntime::new(gated).unwrap().accelerate(&workload.program).unwrap();
                let ungated_report =
                    LascRuntime::new(ungated).unwrap().accelerate(&workload.program).unwrap();

                assert!(gated_report.halted, "{benchmark}/{mode}: gated run did not halt");
                assert!(ungated_report.halted, "{benchmark}/{mode}: ungated run did not halt");
                assert_eq!(
                    gated_report.final_state.as_bytes(),
                    ungated_report.final_state.as_bytes(),
                    "{benchmark}/{mode}: economics gating changed the result"
                );
                assert!(
                    workload.verify(&gated_report.final_state),
                    "{benchmark}/{mode}: gated run produced a wrong result"
                );
                if mode == "inline" {
                    // Inline runs are fully reproducible, counters included:
                    // a disabled model must still count every candidate as
                    // dispatched, so `considered` totals stay comparable.
                    let on = gated_report.economics.expect("inline run must report economics");
                    let off = ungated_report.economics.expect("inline run must report economics");
                    assert_eq!(off.suppressed, 0, "{benchmark}: disabled gating suppressed");
                    assert_eq!(
                        on.dispatched + on.suppressed,
                        on.considered,
                        "{benchmark}: economics counters disagree ({on:?})"
                    );
                }
                if let Some(stats) = gated_report.economics {
                    emit_econ(benchmark, mode, &stats);
                }
            }
        }
    }

    /// The chaotic logistic map is the value model's reason to exist: its
    /// speculation never lands, so the gate must suppress most dispatches
    /// (keeping only warm-up and probe leaks) while the predictable Collatz
    /// workload keeps dispatching essentially everything.
    #[test]
    fn junk_workloads_are_throttled_and_learnable_ones_are_not() {
        let logistic = build(Benchmark::LogisticMap, Scale::Tiny).unwrap();
        let report = LascRuntime::new(config_for(Benchmark::LogisticMap, 0))
            .unwrap()
            .accelerate(&logistic.program)
            .unwrap();
        let stats = report.economics.unwrap();
        assert!(
            stats.suppressed > stats.dispatched,
            "logistic speculation should be mostly suppressed ({stats:?})"
        );
        assert!(stats.probes > 0, "suppression must stay leaky ({stats:?})");
        assert_eq!(stats.last_horizon, 1, "a chaotic rip must collapse the rollout horizon");
        assert!(stats.suppressed_cost > 0.0);

        let collatz = build(Benchmark::Collatz, Scale::Tiny).unwrap();
        let report = LascRuntime::new(config_for(Benchmark::Collatz, 0))
            .unwrap()
            .accelerate(&collatz.program)
            .unwrap();
        let stats = report.economics.unwrap();
        assert!(
            stats.dispatched >= 9 * stats.suppressed,
            "collatz speculation should almost never be suppressed ({stats:?})"
        );
        assert!(stats.realized_hit_rate > 0.1, "collatz hits must register ({stats:?})");
    }
}

/// Tier-up execution: compiling hot inter-occurrence regions into fused,
/// block-threaded micro-op blocks changes the *cost* of an instruction,
/// never its semantics. Tier on vs. off must therefore leave `final_state`
/// bit-identical in every execution mode — inline, miss-driven workers and
/// planner — on every benchmark, and the instruction accounting (supersteps,
/// budgets, deadlines) must stay exact at block boundaries.
///
/// The CI determinism job collects per-benchmark `TierStats` as JSON lines
/// from the file named by `ASC_TIER_OUT` (uploaded as `TIER_stats.json` and
/// summarized into the step summary next to the economics table).
mod tier {
    use super::*;
    use asc::tvm::{TierConfig, TierStats};

    fn emit_tier(benchmark: Benchmark, mode: &str, stats: &TierStats) {
        let Ok(path) = std::env::var("ASC_TIER_OUT") else { return };
        use std::io::Write;
        let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(path) else {
            return;
        };
        let tier1_share = if stats.instructions() == 0 {
            0.0
        } else {
            stats.tier1_instructions as f64 / stats.instructions() as f64
        };
        let _ = writeln!(
            file,
            "{{\"benchmark\":\"{benchmark}\",\"mode\":\"{mode}\",\
             \"blocks_compiled\":{},\"blocks_invalidated\":{},\"fused_ops\":{},\
             \"tier1_instructions\":{},\"tier0_instructions\":{},\"tier1_share\":{:.6}}}",
            stats.blocks_compiled,
            stats.blocks_invalidated,
            stats.fused_ops,
            stats.tier1_instructions,
            stats.tier0_instructions,
            tier1_share,
        );
    }

    /// Tier on vs. off, across all three execution modes, on every
    /// benchmark: the final state never moves, and the tier really ran.
    #[test]
    fn tier_on_and_off_are_bit_identical_in_every_mode() {
        for benchmark in Benchmark::ALL {
            let workload = build(benchmark, scale_for(benchmark)).unwrap();
            for (mode, workers, planner) in
                [("inline", 0usize, false), ("workers", 4, false), ("planner", 4, true)]
            {
                let mut on = config_for(benchmark, workers);
                on.planner.enabled = planner;
                on.tier = TierConfig::default();
                let mut off = on.clone();
                off.tier = TierConfig::disabled();

                let on_report =
                    LascRuntime::new(on).unwrap().accelerate(&workload.program).unwrap();
                let off_report =
                    LascRuntime::new(off).unwrap().accelerate(&workload.program).unwrap();

                assert!(on_report.halted, "{benchmark}/{mode}: tiered run did not halt");
                assert!(off_report.halted, "{benchmark}/{mode}: tier-0 run did not halt");
                assert_eq!(
                    on_report.final_state.as_bytes(),
                    off_report.final_state.as_bytes(),
                    "{benchmark}/{mode}: tier-up changed the result"
                );
                assert!(
                    workload.verify(&on_report.final_state),
                    "{benchmark}/{mode}: tiered run produced a wrong result"
                );
                // Accounting is exact at block boundaries, so the
                // semantically retired total is identical, not just close.
                assert_eq!(
                    on_report.total_instructions, off_report.total_instructions,
                    "{benchmark}/{mode}: tier-up changed the instruction accounting"
                );
                // The tier really ran: the recognized IP is seeded hot, so
                // the first executed superstep already compiles its region.
                assert!(
                    on_report.tier.blocks_compiled > 0,
                    "{benchmark}/{mode}: tier on but nothing compiled ({:?})",
                    on_report.tier
                );
                assert!(
                    on_report.tier.tier1_instructions > 0,
                    "{benchmark}/{mode}: tier on but nothing retired in blocks ({:?})",
                    on_report.tier
                );
                assert_eq!(
                    off_report.tier.blocks_compiled, 0,
                    "{benchmark}/{mode}: tier off but blocks compiled ({:?})",
                    off_report.tier
                );
                emit_tier(benchmark, mode, &on_report.tier);
            }
        }
    }

    /// The full fault campaign (worker panics, stalls, entry corruption,
    /// planner death) with the tier enabled: deadline-killed and faulted
    /// jobs stop mid-block, and their exact instruction accounting is what
    /// keeps the final state bit-identical to fault-free tier-0 execution.
    #[cfg(feature = "fault-inject")]
    #[test]
    fn fault_soak_with_tier_enabled_stays_bit_identical() {
        let seed = super::fault_soak::fault_seed();
        for benchmark in Benchmark::ALL {
            let workload = build(benchmark, scale_for(benchmark)).unwrap();
            let mut reference = config_for(benchmark, 0);
            reference.tier = TierConfig::disabled();
            let reference =
                LascRuntime::new(reference).unwrap().accelerate(&workload.program).unwrap();
            let mut soak = super::fault_soak::soak_config(benchmark, seed);
            soak.tier = TierConfig::default();
            let faulted = LascRuntime::new(soak).unwrap().accelerate(&workload.program).unwrap();
            assert!(faulted.halted, "{benchmark}: tiered faulted run did not halt");
            assert_eq!(
                reference.final_state.as_bytes(),
                faulted.final_state.as_bytes(),
                "{benchmark}: seed {seed} fault campaign with tier enabled changed the result"
            );
            assert!(
                faulted.health.injected_faults > 0,
                "{benchmark}: the fault campaign never fired ({:?})",
                faulted.health
            );
            assert!(
                faulted.tier.tier1_instructions > 0,
                "{benchmark}: soak ran tier-0 only ({:?})",
                faulted.tier
            );
        }
    }
}

/// Crash durability: a checkpointed run cut short mid-flight and resumed
/// from disk must finish in a final state bit-identical to the
/// uninterrupted run — in every execution mode, on every benchmark. The
/// truncation here is an instruction budget (the in-process equivalent of
/// a kill; the subprocess SIGKILL variant lives in the `kill_resume_soak`
/// bin), and workers/planner state is deliberately not checkpointed: those
/// tiers re-warm after resume exactly like they re-warm after a dead
/// planner, so bit-identity cannot depend on them.
mod checkpoint {
    use super::*;
    use std::path::PathBuf;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("asc-determinism-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            Self(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn checkpointed(mut config: AscConfig, dir: &TempDir, budget: u64) -> AscConfig {
        config.checkpoint.enabled = true;
        config.checkpoint.directory = Some(dir.0.clone());
        config.checkpoint.interval = 4;
        config.checkpoint.keep = 2;
        config.checkpoint.resume = true;
        config.instruction_budget = budget;
        config
    }

    /// Every benchmark × {inline, workers, planner}: truncate a
    /// checkpointed run by budget, resume it, and demand the exact final
    /// state and instruction total of the uninterrupted run.
    #[test]
    fn interrupted_runs_resume_bit_identically_in_every_mode() {
        for benchmark in Benchmark::ALL {
            let workload = build(benchmark, scale_for(benchmark)).unwrap();
            for (mode, workers, planner) in
                [("inline", 0usize, false), ("workers", 4, false), ("planner", 4, true)]
            {
                let mut base = config_for(benchmark, workers);
                base.planner.enabled = planner;
                let reference =
                    LascRuntime::new(base.clone()).unwrap().accelerate(&workload.program).unwrap();
                assert!(reference.halted, "{benchmark}/{mode}: reference did not halt");

                // The budget gates *executed* instructions (fast-forwards
                // are free). Hit timing makes the executed count noisy in
                // threaded modes, so shrink the post-recognizer slice until
                // the leg genuinely truncates.
                let dir = TempDir::new(&format!("{benchmark}-{mode}"));
                let converge = reference.converge_instructions;
                let slice = reference.executed_instructions.saturating_sub(converge);
                let mut first = None;
                for shrink in [2u64, 4, 8, 16] {
                    // A halted attempt leaves checkpoints behind; each
                    // attempt must start cold for the leg to be a real
                    // truncated first run.
                    let _ = std::fs::remove_dir_all(&dir.0);
                    let config = checkpointed(base.clone(), &dir, converge + slice / shrink);
                    let report =
                        LascRuntime::new(config).unwrap().accelerate(&workload.program).unwrap();
                    if !report.halted {
                        first = Some(report);
                        break;
                    }
                }
                let first = first
                    .unwrap_or_else(|| panic!("{benchmark}/{mode}: no budget truncated the run"));
                let stats = first.checkpoints.expect("checkpointing was on");
                assert!(stats.saves > 0, "{benchmark}/{mode}: truncated leg never saved {stats:?}");
                assert!(!stats.resumed, "{benchmark}/{mode}: first leg resumed from stale state");

                let resumed =
                    LascRuntime::new(checkpointed(base.clone(), &dir, base.instruction_budget))
                        .unwrap()
                        .accelerate(&workload.program)
                        .unwrap();
                assert!(resumed.halted, "{benchmark}/{mode}: resumed run did not halt");
                let stats = resumed.checkpoints.expect("checkpointing was on");
                assert!(stats.resumed, "{benchmark}/{mode}: second leg started cold {stats:?}");
                assert_eq!(stats.rejected_files, 0, "{benchmark}/{mode}: {stats:?}");
                assert_eq!(
                    reference.final_state.as_bytes(),
                    resumed.final_state.as_bytes(),
                    "{benchmark}/{mode}: resume diverged from the uninterrupted run"
                );
                assert_eq!(
                    reference.total_instructions, resumed.total_instructions,
                    "{benchmark}/{mode}: resume changed the instruction accounting"
                );
                assert!(
                    workload.verify(&resumed.final_state),
                    "{benchmark}/{mode}: resumed run produced a wrong result"
                );
            }
        }
    }
}

/// Fault-soak mode (`--features fault-inject`): the supervision layer's
/// claim is that *execution* failures — worker panics, runaway jobs,
/// corrupted cache entries, a dead planner — only ever cost speed. These
/// tests run every benchmark under an aggressive deterministic fault
/// campaign and assert the final states stay bit-identical to fault-free
/// inline execution, then drive the circuit breaker through a full
/// trip-and-recover cycle.
///
/// The CI soak job parameterizes the campaign with `ASC_FAULT_SEED` and
/// collects per-benchmark `HealthStats` as JSON lines from the file named
/// by `ASC_HEALTH_OUT`.
#[cfg(feature = "fault-inject")]
mod fault_soak {
    use super::*;
    use asc::core::config::BreakerConfig;
    use asc::core::supervisor::HealthStats;
    use asc::core::FaultPlan;

    pub(super) fn fault_seed() -> u64 {
        std::env::var("ASC_FAULT_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(1)
    }

    /// ISSUE acceptance floor: ≥ 10% worker panics, ≥ 1% entry corruption,
    /// the planner killed once, plus stalls for the deadline to kill.
    fn aggressive_plan(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            worker_panic_rate: 0.15,
            job_stall_rate: 0.05,
            entry_corruption_rate: 0.02,
            planner_death_after: Some(5),
            ..FaultPlan::default()
        }
    }

    pub(super) fn soak_config(benchmark: Benchmark, seed: u64) -> AscConfig {
        AscConfig {
            fault: Some(aggressive_plan(seed)),
            // Tight enough to bind under the 2M-instruction superstep
            // budget, loose enough that honest supersteps finish.
            job_deadline_instructions: 100_000,
            // Panicked workers retire; a 15% panic rate burns restarts
            // quickly, and losing slots mid-test is not what is under test.
            max_worker_restarts: 10_000,
            worker_restart_backoff_ms: 0,
            ..config_for(benchmark, 4)
        }
    }

    fn emit_health(benchmark: Benchmark, seed: u64, health: &HealthStats) {
        let Ok(path) = std::env::var("ASC_HEALTH_OUT") else { return };
        use std::io::Write;
        let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(path) else {
            return;
        };
        let _ = writeln!(
            file,
            "{{\"benchmark\":\"{benchmark}\",\"seed\":{seed},\
             \"worker_panics\":{},\"worker_restarts\":{},\"workers_lost\":{},\
             \"spawn_failures\":{},\"panicked_joins\":{},\"deadline_kills\":{},\
             \"planner_panics\":{},\"breaker_trips\":{},\"breaker_recoveries\":{},\
             \"breaker_open_occurrences\":{},\"checksum_rejects\":{},\
             \"watchdog_stalls\":{},\"watchdog_escalations\":{},\
             \"injected_faults\":{}}}",
            health.worker_panics,
            health.worker_restarts,
            health.workers_lost,
            health.spawn_failures,
            health.panicked_joins,
            health.deadline_kills,
            health.planner_panics,
            health.breaker_trips,
            health.breaker_recoveries,
            health.breaker_open_occurrences,
            health.checksum_rejects,
            health.watchdog_stalls,
            health.watchdog_escalations,
            health.injected_faults,
        );
    }

    /// Every benchmark, under the full fault campaign (panics, stalls,
    /// corruption, planner death at occurrence 5), must produce a final
    /// state bit-identical to fault-free inline execution — and the report
    /// must prove the campaign actually ran.
    #[test]
    fn faulted_runs_stay_bit_identical_on_every_benchmark() {
        let seed = fault_seed();
        for benchmark in Benchmark::ALL {
            let workload = build(benchmark, scale_for(benchmark)).unwrap();
            let reference = LascRuntime::new(config_for(benchmark, 0))
                .unwrap()
                .accelerate(&workload.program)
                .unwrap();
            let faulted = LascRuntime::new(soak_config(benchmark, seed))
                .unwrap()
                .accelerate(&workload.program)
                .unwrap();
            assert!(faulted.halted, "{benchmark}: faulted run did not halt");
            assert_eq!(
                reference.final_state.as_bytes(),
                faulted.final_state.as_bytes(),
                "{benchmark}: seed {seed} fault campaign changed the result"
            );
            assert!(
                workload.verify(&faulted.final_state),
                "{benchmark}: faulted run produced a wrong result"
            );
            let health = &faulted.health;
            assert!(
                health.injected_faults > 0,
                "{benchmark}: the fault campaign never fired ({health:?})"
            );
            assert_eq!(
                health.planner_panics, 1,
                "{benchmark}: planner death at occurrence 5 was not detected ({health:?})"
            );
            // The run survived the planner's death: whatever happened after
            // the fallback, no speculation job was lost unaccounted.
            if let Some(stats) = faulted.speculation {
                assert_eq!(
                    stats.dispatched,
                    stats.completed
                        + stats.faulted
                        + stats.exhausted
                        + stats.panicked
                        + stats.deadline_killed,
                    "{benchmark}: supervised pool lost jobs ({stats:?})"
                );
            }
            emit_health(benchmark, seed, health);
        }
    }

    /// A burst of guaranteed panics must trip the breaker to inline
    /// execution; once the burst ends, the half-open probe must re-close it
    /// — and none of it may change the program's result.
    #[test]
    fn breaker_trips_on_a_fault_burst_and_recovers_after_it() {
        let seed = fault_seed();
        let workload = build(Benchmark::Collatz, Scale::Tiny).unwrap();
        let reference = LascRuntime::new(config_for(Benchmark::Collatz, 0))
            .unwrap()
            .accelerate(&workload.program)
            .unwrap();
        let mut config = AscConfig {
            // A short burst: every probe that lands inside it re-trips the
            // breaker with a doubled cooldown, so the burst must drain in a
            // few half-open cycles for recovery to land within the run.
            fault: Some(FaultPlan {
                seed,
                worker_panic_rate: 1.0,
                burst_jobs: 10,
                ..FaultPlan::default()
            }),
            max_worker_restarts: 10_000,
            worker_restart_backoff_ms: 0,
            breaker: BreakerConfig {
                enabled: true,
                window: 8,
                failure_threshold: 0.5,
                min_failures: 2,
                cooldown_occurrences: 4,
                probe_successes: 2,
            },
            ..config_for(Benchmark::Collatz, 4)
        };
        // Miss-driven dispatch keeps the success/failure stream coupled to
        // the main loop's occurrences, making trip *and* recovery land
        // within the run deterministically enough to assert on.
        config.planner.enabled = false;
        let report = LascRuntime::new(config).unwrap().accelerate(&workload.program).unwrap();
        assert!(report.halted);
        assert_eq!(
            reference.final_state.as_bytes(),
            report.final_state.as_bytes(),
            "breaker cycling changed the result"
        );
        let health = &report.health;
        assert!(health.worker_panics > 0, "burst never panicked a worker ({health:?})");
        assert!(health.breaker_trips >= 1, "breaker never tripped ({health:?})");
        assert!(
            health.breaker_open_occurrences > 0,
            "breaker tripped but no occurrence ran inline ({health:?})"
        );
        assert!(
            health.breaker_recoveries >= 1,
            "breaker never recovered after the burst ({health:?})"
        );
        emit_health(Benchmark::Collatz, seed, health);
    }

    /// Liveness: an injected main-loop stall must be *detected* by the
    /// watchdog within its deadline and *escalated* — and because the stall
    /// hook releases the main thread once the escalation lands, the run
    /// must then complete with the exact fault-free result. This drives the
    /// full detect → escalate → recover path through a real `accelerate`
    /// run; the stage machinery itself is unit-tested in `supervisor`.
    #[test]
    fn watchdog_detects_an_injected_stall_and_the_run_still_completes() {
        let seed = fault_seed();
        let workload = build(Benchmark::Collatz, Scale::Tiny).unwrap();
        let reference = LascRuntime::new(config_for(Benchmark::Collatz, 0))
            .unwrap()
            .accelerate(&workload.program)
            .unwrap();

        let mut config = config_for(Benchmark::Collatz, 4);
        config.planner.enabled = false;
        config.fault =
            Some(FaultPlan { seed, stall_at_occurrence: Some(20), ..FaultPlan::default() });
        config.watchdog.enabled = true;
        config.watchdog.deadline_ms = 100;
        config.watchdog.poll_ms = 10;
        let report = LascRuntime::new(config).unwrap().accelerate(&workload.program).unwrap();

        assert!(report.halted, "the stalled run never recovered");
        assert_eq!(
            reference.final_state.as_bytes(),
            report.final_state.as_bytes(),
            "watchdog escalation changed the result"
        );
        assert!(workload.verify(&report.final_state));
        let health = &report.health;
        assert!(health.watchdog_stalls >= 1, "stall was never detected ({health:?})");
        assert!(health.watchdog_escalations >= 1, "stall was never escalated ({health:?})");
        emit_health(Benchmark::Collatz, seed, health);
    }
}
