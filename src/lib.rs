//! # asc — facade crate for the ASC (Automatically Scalable Computation) reproduction
//!
//! Re-exports the workspace crates so examples and downstream users can
//! depend on a single crate:
//!
//! * [`tvm`] — the trajectory-based functional simulator (state vectors,
//!   dependency tracking, transition function).
//! * [`asm`] — the assembler for the TVM ISA.
//! * [`learn`] — on-line predictors and the regret-minimizing ensemble.
//! * [`core`] — the ASC architecture: recognizer, trajectory cache,
//!   allocator, speculation, the LASC runtime and the cluster scaling model.
//! * [`workloads`] — the paper's three benchmarks (Ising, 2mm, Collatz).

#![forbid(unsafe_code)]

pub use asc_asm as asm;
pub use asc_core as core;
pub use asc_learn as learn;
pub use asc_tvm as tvm;
pub use asc_workloads as workloads;
